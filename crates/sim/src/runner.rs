//! The simulation driver: feeds requests to a policy, verifies every claim
//! the policy makes, accounts all costs, and maintains the event-space
//! instrumentation.
//!
//! The simulator is adversarial towards the policy: it mirrors the cache
//! itself, recomputes whether each round pays, and validates every action
//! against the problem definition (Section 3) — a buggy policy cannot
//! misreport its own cost or smuggle an invalid changeset through.
//!
//! The round logic lives in one place — the per-shard `Driver` — and is
//! executed through the sharded engine ([`crate::engine`]). The classic
//! entry points are thin single-shard adapters over it:
//!
//! * [`run_policy`] — the classic per-round entry point;
//! * [`run_stream`] — the batched entry point for long request streams:
//!   cost accounting is accumulated in registers and folded into the report
//!   once per chunk, and in debug builds every chunk boundary re-audits the
//!   policy's internal aggregates ([`otc_core::policy::CachePolicy::audit`])
//!   — so even `SimConfig::bare` benchmark configurations cannot silently
//!   drift from the reference behaviour.
//!
//! Every shard reuses one [`ActionBuffer`] plus validation scratch across
//! all rounds: a steady-state round performs no heap allocation
//! (instrumented runs amortise an occasional push to the per-field size
//! log).

use otc_core::cache::CacheSet;
use otc_core::changeset::{is_valid_negative_with, is_valid_positive_with, ValidationScratch};
use otc_core::policy::{request_pays, ActionBuffer, ActionKind, CachePolicy};
use otc_core::request::Request;
use otc_core::tree::{NodeId, Tree};

use crate::report::{FieldStats, PeriodStats, PhaseStats, Report};

/// Simulation options.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// The per-node reorganisation cost α.
    pub alpha: u64,
    /// Verify subforest/validity/capacity invariants after every action.
    pub validate: bool,
    /// Track fields, periods and phases (small constant overhead).
    pub instrument: bool,
}

impl SimConfig {
    /// Standard configuration: full validation and instrumentation.
    #[must_use]
    pub fn new(alpha: u64) -> Self {
        Self { alpha, validate: true, instrument: true }
    }

    /// Fast configuration for throughput benchmarks: no checking, no
    /// instrumentation.
    #[must_use]
    pub fn bare(alpha: u64) -> Self {
        Self { alpha, validate: false, instrument: false }
    }
}

/// Closes the field belonging to an applied changeset and reports
/// `(paying requests inside, nodes with a "full" period)`.
fn close_field(pending: &mut [u64], set: &[NodeId], half_alpha: u64) -> (u64, u64) {
    let mut req = 0u64;
    let mut full = 0u64;
    for &v in set {
        let p = pending[v.index()];
        req += p;
        if p >= half_alpha {
            full += 1;
        }
        pending[v.index()] = 0;
    }
    (req, full)
}

/// All per-run mutable state of the verified driver, owned outside the
/// round loop so every round reuses the same storage. One `Driver` exists
/// per engine shard (`crate::engine`); the classic drivers below are
/// single-shard adapters.
pub(crate) struct Driver {
    pub(crate) mirror: CacheSet,
    /// Paying requests per node since its last state change (its slice of
    /// the current field).
    pub(crate) pending: Vec<u64>,
    pub(crate) fields: FieldStats,
    pub(crate) periods: PeriodStats,
    half_alpha: u64,
    // Phase bookkeeping.
    pub(crate) phase: PhaseStats,
    pub(crate) phase_pout: u64,
    pub(crate) phase_pin: u64,
    /// Scratch marks for changeset validity and the in-place flush payload
    /// comparison (epoch-based, never cleared).
    scratch: ValidationScratch,
    /// The reusable per-round outcome buffer.
    buf: ActionBuffer,
    /// Largest number of nodes one round's actions touched since the last
    /// [`Driver::take_buf_high_water`] — the telemetry window's
    /// action-buffer high-water mark.
    pub(crate) buf_high_water: usize,
}

impl Driver {
    pub(crate) fn new(n: usize, cfg: SimConfig) -> Self {
        Self {
            mirror: CacheSet::empty(n),
            pending: vec![0u64; n],
            fields: FieldStats::default(),
            periods: PeriodStats::default(),
            half_alpha: cfg.alpha.div_ceil(2),
            phase: PhaseStats::default(),
            phase_pout: 0,
            phase_pin: 0,
            scratch: ValidationScratch::new(n),
            buf: ActionBuffer::new(),
            buf_high_water: 0,
        }
    }

    /// Current cache population of the verified mirror (the telemetry
    /// window's occupancy sample).
    pub(crate) fn cache_len(&self) -> usize {
        self.mirror.len()
    }

    /// The action-buffer high-water mark (max nodes touched by one round)
    /// accumulated since the last [`Driver::take_buf_high_water`].
    pub(crate) fn buf_high_water(&self) -> usize {
        self.buf_high_water
    }

    /// Returns and resets the action-buffer high-water mark (max nodes
    /// touched by one round) accumulated since the last call.
    pub(crate) fn take_buf_high_water(&mut self) -> usize {
        std::mem::take(&mut self.buf_high_water)
    }

    /// Adopts `cache` as the mirror's starting state. The engine calls
    /// this at construction with the policy's current cache, so a policy
    /// that already holds content (e.g. one resumed across several
    /// `run_fib` calls) verifies against its real state instead of a
    /// spurious empty mirror.
    pub(crate) fn adopt_cache(&mut self, cache: &CacheSet) {
        self.mirror = cache.clone();
    }

    /// Verifies that `set` is exactly the mirror's contents, without
    /// cloning the mirror or sorting the payload: every payload node must
    /// be cached and distinct, and the distinct count must equal the
    /// mirror's size. O(|set|) and allocation-free — cheap enough to run
    /// unconditionally (even in bare mode), preserving the guarantee that
    /// a policy can never misreport a flush.
    fn check_flush_payload(&mut self, set: &[NodeId], round: usize) -> Result<(), String> {
        self.scratch.reset(self.pending.len());
        for &v in set {
            if !self.scratch.insert(v) {
                return Err(format!("round {round}: flush payload repeats {v:?}"));
            }
            if !self.mirror.contains(v) {
                return Err(format!("round {round}: flush payload contains non-cached {v:?}"));
            }
        }
        if set.len() != self.mirror.len() {
            return Err(format!(
                "round {round}: flush payload has {} nodes but the cache holds {}",
                set.len(),
                self.mirror.len()
            ));
        }
        Ok(())
    }

    /// Drives one request through `policy`, verifies and mirrors every
    /// action, updates event counters and instrumentation, and returns
    /// `(paid, nodes_touched)` for the caller's cost accounting.
    pub(crate) fn round(
        &mut self,
        tree: &Tree,
        policy: &mut dyn CachePolicy,
        req: Request,
        round: usize,
        cfg: SimConfig,
        report: &mut Report,
    ) -> Result<(bool, u64), String> {
        let expected_pays = request_pays(&self.mirror, req);
        policy.step(req, &mut self.buf);
        if self.buf.paid_service() != expected_pays {
            return Err(format!(
                "round {round}: policy reported paid={} but the mirror says {}",
                self.buf.paid_service(),
                expected_pays
            ));
        }
        report.rounds += 1;
        self.phase.rounds += 1;
        if expected_pays {
            report.paid_rounds += 1;
            self.phase.cost.service += 1;
            self.pending[req.node.index()] += 1;
        }

        let mut touched_total = 0u64;
        // Detach the buffer so its spans can be read while `self`'s other
        // fields are mutated; restored below (the swapped-in default is
        // only live across error returns, which abort the run anyway).
        let buf = std::mem::take(&mut self.buf);
        let result = self.apply_actions(tree, &buf, round, cfg, report, &mut touched_total);
        self.buf_high_water = self.buf_high_water.max(buf.nodes_touched());
        self.buf = buf;
        result?;

        if cfg.validate {
            self.mirror
                .validate(tree)
                .map_err(|e| format!("round {round}: mirror invalid after actions: {e}"))?;
            if self.mirror.len() > policy.capacity() {
                return Err(format!(
                    "round {round}: capacity exceeded: {} > {}",
                    self.mirror.len(),
                    policy.capacity()
                ));
            }
            if self.mirror != *policy.cache() {
                return Err(format!("round {round}: policy cache diverged from mirror"));
            }
        }
        report.peak_cache = report.peak_cache.max(self.mirror.len());
        Ok((expected_pays, touched_total))
    }

    /// Applies, verifies and instruments every action recorded in `buf`.
    fn apply_actions(
        &mut self,
        tree: &Tree,
        buf: &ActionBuffer,
        round: usize,
        cfg: SimConfig,
        report: &mut Report,
        touched_total: &mut u64,
    ) -> Result<(), String> {
        for i in 0..buf.num_actions() {
            let (kind, set) = buf.action(i);
            // Reorganisation cost is charged to the phase the action ends
            // in — for a flush that is the *dying* phase (the paper's
            // `kP·α` final-eviction term), so account it before any phase
            // hand-over below.
            let touched = set.len() as u64;
            *touched_total += touched;
            self.phase.cost.reorg += cfg.alpha * touched;
            match kind {
                ActionKind::Fetch => {
                    if cfg.validate
                        && !is_valid_positive_with(tree, &self.mirror, set, &mut self.scratch)
                    {
                        return Err(format!("round {round}: invalid positive changeset {set:?}"));
                    }
                    self.mirror.fetch(set);
                    report.fetch_events += 1;
                    report.nodes_fetched += touched;
                    if cfg.instrument {
                        let (req_in_field, full) =
                            close_field(&mut self.pending, set, self.half_alpha);
                        self.fields.positive_fields += 1;
                        self.fields.total_size += touched;
                        self.fields.total_requests += req_in_field;
                        self.fields.field_sizes.push(touched);
                        if req_in_field != touched * cfg.alpha {
                            self.fields.saturation_violations += 1;
                        }
                        // A fetch closes one out-period per fetched node.
                        self.phase_pout += touched;
                        self.periods.pout += touched;
                        self.periods.full_out += full;
                        self.phase.fields_size += touched;
                    }
                }
                ActionKind::Evict => {
                    if cfg.validate
                        && !is_valid_negative_with(tree, &self.mirror, set, &mut self.scratch)
                    {
                        return Err(format!("round {round}: invalid negative changeset {set:?}"));
                    }
                    self.mirror.evict(set);
                    report.evict_events += 1;
                    report.nodes_evicted += touched;
                    if cfg.instrument {
                        let (req_in_field, full) =
                            close_field(&mut self.pending, set, self.half_alpha);
                        self.fields.negative_fields += 1;
                        self.fields.total_size += touched;
                        self.fields.total_requests += req_in_field;
                        self.fields.field_sizes.push(touched);
                        if req_in_field != touched * cfg.alpha {
                            self.fields.saturation_violations += 1;
                        }
                        // An eviction closes one in-period per node.
                        self.phase_pin += touched;
                        self.periods.pin += touched;
                        self.periods.full_in += full;
                        self.phase.fields_size += touched;
                    }
                }
                ActionKind::Flush => {
                    // A zero-payload flush (empty-cache phase restart) is
                    // legal: it costs 0 reorganisation — `touched` is 0 —
                    // while still closing the phase below. The payload
                    // check runs in every mode (as it always has): it is
                    // O(|set|), allocation-free, and flushes are rare.
                    self.check_flush_payload(set, round)?;
                    report.flush_events += 1;
                    report.nodes_evicted += touched;
                    report.nodes_flushed += touched;
                    if cfg.instrument {
                        // The flush ends the phase: kP is the cache size
                        // just before the flush; all pending request mass
                        // belongs to the dying phase's open field.
                        self.phase.k_p = self.mirror.len();
                        self.phase.finished = true;
                        self.phase.open_requests = self.pending.iter().sum();
                        self.periods.per_phase_balance.push((
                            self.phase_pout,
                            self.phase_pin,
                            self.phase.k_p,
                        ));
                        report.phases.push(std::mem::take(&mut self.phase));
                        self.phase_pout = 0;
                        self.phase_pin = 0;
                        self.pending.fill(0);
                    }
                    self.mirror.clear();
                }
            }
        }
        Ok(())
    }

    /// Closes the unfinished phase and copies instrumentation into the
    /// report **without consuming the driver** — the incremental-snapshot
    /// primitive behind [`crate::worker::ShardWorker::report_snapshot`]:
    /// a long-lived serving worker can publish "the report as if the run
    /// ended now" at any moment and keep driving afterwards. Cost is one
    /// clone of the instrumentation aggregates (zero when `instrument` is
    /// off), paid per snapshot, never per round.
    pub(crate) fn finish_into(&self, cfg: SimConfig, report: &mut Report) {
        if cfg.instrument {
            // Close the unfinished phase and account the open field F∞.
            let mut phase = self.phase.clone();
            phase.k_p = self.mirror.len();
            phase.finished = false;
            phase.open_requests = self.pending.iter().sum();
            let mut periods = self.periods.clone();
            periods.per_phase_balance.push((self.phase_pout, self.phase_pin, phase.k_p));
            report.phases.push(phase);
            let mut fields = self.fields.clone();
            fields.open_field_requests = self.pending.iter().sum();
            report.fields = Some(fields);
            report.periods = Some(periods);
        }
    }

    /// Closes the unfinished phase and moves instrumentation into the
    /// report (the consuming end-of-run form of [`Driver::finish_into`]).
    pub(crate) fn finish(self, cfg: SimConfig, report: &mut Report) {
        self.finish_into(cfg, report);
    }
}

/// Runs `policy` over `requests` and returns the verified report.
///
/// ```
/// use std::sync::Arc;
/// use otc_core::{Request, Tree, TcConfig, TcFast};
/// use otc_sim::{run_policy, SimConfig};
///
/// let tree = Arc::new(Tree::star(3));
/// let leaf = tree.leaves()[0];
/// let reqs = vec![Request::pos(leaf); 5];
/// let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(2, 2));
/// let report = run_policy(&tree, &mut tc, &reqs, SimConfig::new(2)).unwrap();
/// // Two misses, then the fetch (α = 2), then free hits.
/// assert_eq!(report.cost.service, 2);
/// assert_eq!(report.cost.reorg, 2);
/// ```
///
/// # Errors
/// Returns a description of the first protocol violation: wrong
/// `paid_service` flag, invalid changeset, flush payload mismatch,
/// capacity overflow, subforest violation, or mirror divergence.
pub fn run_policy(
    tree: &Tree,
    policy: &mut dyn CachePolicy,
    requests: &[Request],
    cfg: SimConfig,
) -> Result<Report, String> {
    // A thin adapter: the single-shard case of the engine, borrowing the
    // caller's tree and policy (no copies, no routing table).
    let mut engine = crate::engine::ShardedEngine::single_borrowed(tree, policy, cfg.into());
    engine.submit_batch(requests).map_err(|e| e.message)?;
    engine.into_report().map_err(|e| e.message)
}

/// Batched driver for long request streams: identical verification and
/// semantics to [`run_policy`], with cost accounting accumulated in
/// registers and folded into the report once per `chunk_size` requests.
///
/// In debug builds the policy's [`CachePolicy::audit`] self-check runs at
/// every chunk boundary (and once at the end), so benchmark configurations
/// that disable simulator validation (`SimConfig::bare`) still cannot
/// drift from the reference behaviour unnoticed while testing.
///
/// # Errors
/// Same protocol violations as [`run_policy`], plus any audit failure
/// (debug builds only).
///
/// # Panics
/// Panics if `chunk_size == 0`.
pub fn run_stream(
    tree: &Tree,
    policy: &mut dyn CachePolicy,
    requests: &[Request],
    cfg: SimConfig,
    chunk_size: usize,
) -> Result<Report, String> {
    // The engine's chunked/audited cadence on a single borrowed shard.
    let engine_cfg = crate::engine::EngineConfig::from(cfg).audit_every(chunk_size);
    let mut engine = crate::engine::ShardedEngine::single_borrowed(tree, policy, engine_cfg);
    engine.submit_batch(requests).map_err(|e| e.message)?;
    engine.into_report().map_err(|e| e.message)
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use otc_core::policy::StepOutcome;
    use otc_core::tc::{TcConfig, TcFast};
    use otc_core::tree::Tree;
    use otc_core::Request;

    #[test]
    fn accounting_matches_manual_trace() {
        // Star(3), α = 2, capacity 2: two requests to a leaf fetch it.
        let tree = Arc::new(Tree::star(3));
        let leaf = tree.leaves()[0];
        let reqs = vec![Request::pos(leaf), Request::pos(leaf), Request::pos(leaf)];
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(2, 2));
        let report = run_policy(&tree, &mut tc, &reqs, SimConfig::new(2)).expect("valid run");
        assert_eq!(report.cost.service, 2, "two paying requests");
        assert_eq!(report.cost.reorg, 2, "one node fetched at α = 2");
        assert_eq!(report.fetch_events, 1);
        assert_eq!(report.paid_rounds, 2);
        assert_eq!(report.peak_cache, 1);
        let fields = report.fields.expect("instrumented");
        assert_eq!(fields.positive_fields, 1);
        assert_eq!(fields.saturation_violations, 0);
        assert_eq!(fields.total_requests, 2);
        assert_eq!(fields.open_field_requests, 0, "third request was free");
    }

    #[test]
    fn tc_fields_always_saturated() {
        let tree = Arc::new(Tree::kary(2, 4));
        let mut rng = otc_util::SplitMix64::new(5);
        let reqs: Vec<Request> = (0..4000)
            .map(|_| {
                let v = otc_core::tree::NodeId(rng.index(tree.len()) as u32);
                if rng.chance(0.4) {
                    Request::neg(v)
                } else {
                    Request::pos(v)
                }
            })
            .collect();
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(3, 6));
        let report = run_policy(&tree, &mut tc, &reqs, SimConfig::new(3)).expect("valid");
        let fields = report.fields.expect("instrumented");
        assert!(fields.positive_fields + fields.negative_fields > 0, "something happened");
        assert_eq!(fields.saturation_violations, 0, "Observation 5.2 holds for every field");
        assert_eq!(
            fields.total_requests,
            fields.total_size * 3,
            "aggregate saturation: req = size·α"
        );
    }

    #[test]
    fn period_balance_matches_lemma() {
        // pout = pin + kP per phase (Lemma 5.11's bookkeeping).
        let tree = Arc::new(Tree::kary(2, 3));
        let mut rng = otc_util::SplitMix64::new(9);
        let reqs: Vec<Request> = (0..6000)
            .map(|_| {
                let v = otc_core::tree::NodeId(rng.index(tree.len()) as u32);
                if rng.chance(0.45) {
                    Request::neg(v)
                } else {
                    Request::pos(v)
                }
            })
            .collect();
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(2, 3));
        let report = run_policy(&tree, &mut tc, &reqs, SimConfig::new(2)).expect("valid");
        let periods = report.periods.expect("instrumented");
        for &(pout, pin, kp) in &periods.per_phase_balance {
            assert_eq!(pout, pin + kp as u64, "pout = pin + kP per phase");
        }
        // All in-periods are full for TC: an eviction of X needs |X|·α
        // negative requests distributed over X... (exactly α per node only
        // after shifting; raw counts are at least 0). The raw guarantee is
        // aggregate: total in-field requests = α·size. So just sanity-check
        // counters exist.
        assert!(periods.pout > 0);
    }

    #[test]
    fn run_stream_matches_run_policy() {
        // The batched driver is semantics-preserving for every chunk size,
        // including ones that straddle flushes and the stream end.
        let tree = Arc::new(Tree::kary(2, 4));
        let mut rng = otc_util::SplitMix64::new(17);
        let reqs: Vec<Request> = (0..5000)
            .map(|_| {
                let v = otc_core::tree::NodeId(rng.index(tree.len()) as u32);
                if rng.chance(0.4) {
                    Request::neg(v)
                } else {
                    Request::pos(v)
                }
            })
            .collect();
        let cfg = SimConfig::new(3);
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(3, 6));
        let base = run_policy(&tree, &mut tc, &reqs, cfg).expect("valid");
        for chunk_size in [1usize, 7, 256, 5000, 100_000] {
            let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(3, 6));
            let report = run_stream(&tree, &mut tc, &reqs, cfg, chunk_size).expect("valid");
            assert_eq!(report.cost.total(), base.cost.total(), "chunk {chunk_size}");
            assert_eq!(report.paid_rounds, base.paid_rounds);
            assert_eq!(report.fetch_events, base.fetch_events);
            assert_eq!(report.evict_events, base.evict_events);
            assert_eq!(report.flush_events, base.flush_events);
            assert_eq!(report.peak_cache, base.peak_cache);
            assert_eq!(report.phases.len(), base.phases.len());
        }
    }

    #[test]
    fn empty_flush_costs_nothing_but_closes_phase() {
        // Path 0→1, α = 1, capacity 1 (the regression pinned by
        // proptest_tc::regression_two_node_path_alpha_one, now verified
        // through the simulator): the fourth request triggers a flush of an
        // *empty* cache. It must cost 0 reorganisation, close the phase,
        // and pass flush-payload validation.
        let tree = Arc::new(Tree::path(2));
        let reqs = vec![
            Request::pos(otc_core::tree::NodeId(1)), // fetch {1}
            Request::pos(otc_core::tree::NodeId(0)), // flush {1}
            Request::pos(otc_core::tree::NodeId(0)), // counter builds
            Request::pos(otc_core::tree::NodeId(0)), // flush of empty cache
        ];
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(1, 1));
        let report = run_policy(&tree, &mut tc, &reqs, SimConfig::new(1)).expect("valid");
        assert_eq!(report.flush_events, 2);
        // Reorg: fetch {1} (1) + flush {1} (1) + empty flush (0) = 2.
        assert_eq!(report.cost.reorg, 2, "zero-payload flush adds no reorganisation cost");
        assert_eq!(report.cost.service, 4, "every round paid");
        // Both flushes closed a phase; the final (unfinished) phase is
        // still reported, so three phases in total.
        assert_eq!(report.phases.len(), 3);
        assert!(report.phases[0].finished && report.phases[1].finished);
        assert_eq!(report.phases[1].k_p, 0, "the empty flush ends a phase with kP = 0");
        assert!(!report.phases[2].finished);
        // Identical through the batched driver.
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(1, 1));
        let stream = run_stream(&tree, &mut tc, &reqs, SimConfig::new(1), 2).expect("valid");
        assert_eq!(stream.cost.reorg, 2);
        assert_eq!(stream.flush_events, 2);
        assert_eq!(stream.phases.len(), 3);
    }

    /// A policy that lies about paying — the simulator must catch it.
    struct Liar {
        cache: CacheSet,
    }
    impl CachePolicy for Liar {
        fn name(&self) -> &'static str {
            "liar"
        }
        fn capacity(&self) -> usize {
            4
        }
        fn cache(&self) -> &CacheSet {
            &self.cache
        }
        fn reset(&mut self) {}
        fn step(&mut self, _req: Request, out: &mut ActionBuffer) {
            out.clear();
        }
    }

    #[test]
    fn liar_is_caught() {
        let tree = Tree::star(2);
        let mut liar = Liar { cache: CacheSet::empty(tree.len()) };
        let reqs = vec![Request::pos(tree.leaves()[0])];
        let err = run_policy(&tree, &mut liar, &reqs, SimConfig::new(2)).unwrap_err();
        assert!(err.contains("paid"), "unexpected error: {err}");
    }

    /// A policy that emits an invalid fetch (internal node without its
    /// children).
    struct InvalidFetcher {
        cache: CacheSet,
        fired: bool,
    }
    impl CachePolicy for InvalidFetcher {
        fn name(&self) -> &'static str {
            "invalid-fetcher"
        }
        fn capacity(&self) -> usize {
            8
        }
        fn cache(&self) -> &CacheSet {
            &self.cache
        }
        fn reset(&mut self) {}
        fn step(&mut self, req: Request, out: &mut ActionBuffer) {
            out.clear();
            if self.fired {
                out.set_paid(true);
                return;
            }
            self.fired = true;
            // Fetch the root alone — invalid on any tree with children.
            self.cache.insert(otc_core::tree::NodeId(0));
            out.set_paid(req.is_positive());
            out.begin(ActionKind::Fetch).push(otc_core::tree::NodeId(0));
        }
    }

    #[test]
    fn invalid_changeset_is_caught() {
        let tree = Tree::star(3);
        let mut p = InvalidFetcher { cache: CacheSet::empty(tree.len()), fired: false };
        let reqs = vec![Request::pos(tree.leaves()[0])];
        let err = run_policy(&tree, &mut p, &reqs, SimConfig::new(2)).unwrap_err();
        assert!(err.contains("invalid positive changeset"), "unexpected error: {err}");
    }

    /// A policy whose internal cache silently diverges from its actions.
    struct Divergent {
        cache: CacheSet,
        fired: bool,
    }
    impl CachePolicy for Divergent {
        fn name(&self) -> &'static str {
            "divergent"
        }
        fn capacity(&self) -> usize {
            8
        }
        fn cache(&self) -> &CacheSet {
            &self.cache
        }
        fn reset(&mut self) {}
        fn step(&mut self, req: Request, out: &mut ActionBuffer) {
            out.clear();
            out.set_paid(req.is_positive());
            if !self.fired {
                self.fired = true;
                // Claims to fetch a leaf but doesn't record it internally.
                out.begin(ActionKind::Fetch).push(otc_core::tree::NodeId(1));
            }
        }
    }

    #[test]
    fn divergent_cache_is_caught() {
        let tree = Tree::star(3);
        let mut p = Divergent { cache: CacheSet::empty(tree.len()), fired: false };
        let reqs = vec![Request::pos(otc_core::tree::NodeId(1))];
        let err = run_policy(&tree, &mut p, &reqs, SimConfig::new(2)).unwrap_err();
        assert!(err.contains("diverged"), "unexpected error: {err}");
    }

    #[test]
    fn bare_mode_skips_checks() {
        // The divergent policy passes in bare mode (documented risk).
        let tree = Tree::star(3);
        let mut p = Divergent { cache: CacheSet::empty(tree.len()), fired: false };
        let reqs = vec![Request::pos(otc_core::tree::NodeId(1))];
        let report = run_policy(&tree, &mut p, &reqs, SimConfig::bare(2)).expect("no checks");
        assert_eq!(report.cost.reorg, 2);
    }

    /// A policy that lies about the flush payload (claims the cache held a
    /// node it never cached) — the in-place payload check must catch it.
    struct FlushLiar {
        cache: CacheSet,
    }
    impl CachePolicy for FlushLiar {
        fn name(&self) -> &'static str {
            "flush-liar"
        }
        fn capacity(&self) -> usize {
            4
        }
        fn cache(&self) -> &CacheSet {
            &self.cache
        }
        fn reset(&mut self) {}
        fn step(&mut self, req: Request, out: &mut ActionBuffer) {
            out.clear();
            out.set_paid(req.is_positive());
            out.begin(ActionKind::Flush).push(otc_core::tree::NodeId(1));
        }
    }

    #[test]
    fn flush_payload_mismatch_is_caught() {
        // In every configuration — the flush check is never gated, so even
        // bare benchmark runs cannot under-report a flush's cost.
        for cfg in [SimConfig::new(2), SimConfig::bare(2)] {
            let tree = Tree::star(3);
            let mut p = FlushLiar { cache: CacheSet::empty(tree.len()) };
            let reqs = vec![Request::pos(otc_core::tree::NodeId(1))];
            let err = run_policy(&tree, &mut p, &reqs, cfg).unwrap_err();
            assert!(err.contains("flush payload"), "unexpected error: {err}");
        }
    }

    /// A policy with broken internal aggregates that only `audit` can see:
    /// its actions and cache are protocol-clean, so per-round validation
    /// passes, but `run_stream`'s debug-build audit hook must reject it.
    struct AuditFailer {
        cache: CacheSet,
    }
    impl CachePolicy for AuditFailer {
        fn name(&self) -> &'static str {
            "audit-failer"
        }
        fn capacity(&self) -> usize {
            4
        }
        fn cache(&self) -> &CacheSet {
            &self.cache
        }
        fn reset(&mut self) {}
        fn audit(&self) -> Result<(), String> {
            Err("synthetic aggregate drift".to_string())
        }
        fn step(&mut self, req: Request, out: &mut ActionBuffer) {
            out.clear();
            out.set_paid(req.is_positive());
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    fn run_stream_audits_even_in_bare_mode() {
        let tree = Tree::star(2);
        let mut p = AuditFailer { cache: CacheSet::empty(tree.len()) };
        let reqs = vec![Request::pos(tree.leaves()[0]); 8];
        // run_policy never audits — the drift goes unnoticed.
        assert!(run_policy(&tree, &mut p, &reqs, SimConfig::bare(2)).is_ok());
        // run_stream audits at chunk boundaries even with validation off.
        let err = run_stream(&tree, &mut p, &reqs, SimConfig::bare(2), 4).unwrap_err();
        assert!(err.contains("audit failed"), "unexpected error: {err}");
    }

    #[test]
    fn step_owned_snapshot_still_works() {
        // The owned convenience wrapper mirrors the buffered outcome.
        let tree = Arc::new(Tree::star(3));
        let leaf = tree.leaves()[0];
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(2, 2));
        assert_eq!(
            tc.step_owned(Request::pos(leaf)),
            StepOutcome { paid_service: true, actions: vec![] }
        );
        let out = tc.step_owned(Request::pos(leaf));
        assert_eq!(out.nodes_touched(), 1);
    }
}
