//! # otc-sim — the verified discrete-round simulator
//!
//! Drives any [`otc_core::policy::CachePolicy`] through a request sequence
//! while *independently* checking every move: the simulator mirrors the
//! cache, validates changesets against the problem definition, enforces
//! the capacity, and does all cost accounting itself.
//!
//! It also materialises the analysis-side objects of the paper's Section 5
//! as runtime instrumentation:
//!
//! * **fields** (Section 5.1): per applied changeset, the requests that
//!   triggered it — with Observation 5.2 (`req(F) = size(F)·α`) checked
//!   per field;
//! * **in/out periods** (Section 5.2.5, Figure 3): closed per node by
//!   fetches/evictions, with the `pout = pin + kP` balance per phase;
//! * **phases** (Section 4): anatomy of each flush-delimited phase (E9).
//!
//! Execution is unified behind the [`engine::ShardedEngine`]: one API over
//! forests of trees (per-shard policies, batch submission with O(1)
//! routing, parallel per-shard execution). The classic entry points
//! [`run_policy`] and [`run_stream`] are thin single-shard adapters over
//! it.
//!
//! Beyond the one aggregate [`Report`] per run, the engine can collect a
//! time-resolved [`telemetry::Timeline`]: per-window, per-shard counters
//! (cost breakdown by fetch/evict/flush, occupancy, action-buffer
//! high-water marks) snapshotted at `audit_every` boundaries and
//! exportable as JSON/CSV — see [`telemetry`].
//!
//! For long-lived serving (the `otc-serve` runtime), the engine comes
//! apart: [`engine::ShardedEngine::into_workers`] detaches one `Send`
//! [`worker::ShardWorker`] per shard (with non-consuming, incremental
//! report/timeline snapshots) plus a cloneable [`worker::ShardRouter`]
//! for the ingress side — see [`worker`].
//!
//! For durability, [`snapshot`] serializes the whole engine — policy
//! state, verified drivers, reports, telemetry — into a checksummed
//! `OTCS` image tied to an OTCT log position; restoring it and replaying
//! the log tail ([`engine::ShardedEngine::recover`]) reproduces the
//! pre-crash state bit-identically.
//!
//! Under live skew, [`rebalance`] re-homes whole cells (root-child
//! subtrie shards) between serving groups: a deterministic planner over
//! per-cell load windows, an epoch-versioned
//! [`otc_core::forest::RoutingTable`], and a replay path that recomputes
//! — and verifies — a live run's entire migration schedule from its own
//! request log (determinism invariant #7).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod rebalance;
pub mod report;
pub mod runner;
pub mod snapshot;
pub mod telemetry;
pub mod worker;

pub use engine::{
    aggregate_reports, EngineConfig, EngineError, ShardHandle, ShardedEngine, SubmitOutcome,
};
pub use rebalance::{plan, replay_trace_rebalancing, RebalanceConfig, RebalanceReplay, Rebalancer};
pub use report::{FieldStats, PeriodStats, PhaseStats, Report};
pub use runner::{run_policy, run_stream, SimConfig};
pub use snapshot::{
    parse_shard_section, EngineSnapshot, LogPosition, RecoverStats, ShardSection, SnapshotError,
    SnapshotMeta,
};
pub use telemetry::{Timeline, WindowRecord};
pub use worker::{timeline_from_windows, BatchHooks, NoHooks, ShardRouter, ShardWorker};
