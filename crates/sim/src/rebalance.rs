//! Deterministic dynamic resharding: detect skew, plan cell migrations,
//! and replay the schedule from a trace.
//!
//! The unit of migration is a **cell**: one shard of the finest
//! root-partition forest ([`otc_core::forest::Forest::cells`]). Cells are
//! the engine's shards, so every cell carries its own policy, verified
//! driver and report — and *where* a cell executes (which serving group
//! owns it) can never change any cost. That is what makes rebalancing
//! deterministic by construction: per-cell reports, telemetry and costs
//! are placement-invariant, and only the placement itself has to be
//! reproduced (determinism invariant #7, `DESIGN.md`).
//!
//! The decision pipeline:
//!
//! 1. every `interval` accepted requests is a **boundary**; the per-cell
//!    cumulative loads at the boundary prefix (rounds, paid rounds,
//!    occupancy — all pure functions of the request stream) are sampled;
//! 2. [`plan`] — a pure function of those loads and the current
//!    [`RoutingTable`] — decides which cells move to which group;
//! 3. the table applies the moves and bumps its epoch (one bump per
//!    boundary, moves or not), and the decision is logged as a
//!    [`RebalanceRecord`] in the OTCT stream.
//!
//! Records are **verification anchors, not the source of truth**:
//! [`replay_trace_rebalancing`] recomputes every decision from the
//! requests alone and checks each record it finds bit-for-bit. A record
//! torn off by a crash is truncated away with the log tail and simply
//! never verified — the recomputed schedule is unaffected. Crash
//! recovery seeds a [`Rebalancer`] from the records in the durable log
//! prefix ([`Rebalancer::fold_record`]) and recomputes every boundary in
//! the replayed tail.

use otc_core::forest::{RoutingTable, ShardId};
use otc_core::request::Request;
use otc_workloads::rebalance::{CellLoad, RebalanceRecord};
use otc_workloads::trace::{TraceEvent, TraceReader};

use crate::engine::{EngineError, ShardedEngine};

/// Rebalancing knobs. All decision inputs are integers (the loads) and
/// all thresholds are integer ratios, so decisions are exactly
/// reproducible on any host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalanceConfig {
    /// Decision cadence: a boundary sits after every `interval` accepted
    /// requests.
    pub interval: u64,
    /// Imbalance trigger, scaled by 1000: plan moves only when
    /// `max_group_load · 1000 > threshold_x1000 · mean_group_load`
    /// (1250 = trigger above 1.25× the mean).
    pub threshold_x1000: u64,
    /// Most cell migrations per boundary (each migration serializes and
    /// reinstalls one cell's full state, so this caps boundary latency).
    pub max_moves: usize,
}

impl RebalanceConfig {
    /// A sane default: trigger above 1.25× the mean, at most 4 moves per
    /// boundary.
    ///
    /// # Panics
    /// Panics if `interval == 0` (there would be a boundary between
    /// every pair of requests *and* before the first).
    #[must_use]
    pub fn new(interval: u64) -> Self {
        assert!(interval > 0, "rebalance interval must be positive");
        Self { interval, threshold_x1000: 1250, max_moves: 4 }
    }

    /// Sets the imbalance trigger (`1000` = any imbalance at all).
    #[must_use]
    pub fn threshold_x1000(mut self, t: u64) -> Self {
        self.threshold_x1000 = t.max(1000);
        self
    }

    /// Sets the per-boundary migration cap.
    #[must_use]
    pub fn max_moves(mut self, m: usize) -> Self {
        self.max_moves = m;
        self
    }
}

/// Plans the migrations for one boundary: a **pure function** of the
/// per-cell window weights (`weights[c]` = the cell's rounds + paid
/// rounds since the previous boundary), the per-cell occupancies
/// (tiebreak: lighter caches serialize into smaller handoff sections),
/// and the current placement. Deterministic by construction — every
/// tie breaks toward the lower group/cell id.
///
/// Greedy: while the heaviest group exceeds the trigger, move its
/// heaviest strictly-improving cell to the lightest group, up to
/// `cfg.max_moves`. Returns `(cell, destination group)` pairs in
/// decision order; empty when balanced (or fewer than two groups).
///
/// # Panics
/// Panics if `weights` / `occupancy` do not match the table's cell
/// count (caller bug, not data corruption).
#[must_use]
pub fn plan(
    weights: &[u64],
    occupancy: &[u64],
    table: &RoutingTable,
    cfg: &RebalanceConfig,
) -> Vec<(ShardId, u32)> {
    assert_eq!(weights.len(), table.num_cells(), "one weight per cell");
    assert_eq!(occupancy.len(), table.num_cells(), "one occupancy per cell");
    let groups = table.num_groups() as usize;
    if groups < 2 {
        return Vec::new();
    }
    // Working copies: the plan is computed against a simulated placement
    // so each greedy step sees the previous steps applied.
    let mut owner: Vec<u32> = table.owners().to_vec();
    let mut load = vec![0u64; groups];
    for (cell, &w) in weights.iter().enumerate() {
        load[owner[cell] as usize] += w;
    }
    let total: u64 = load.iter().sum();
    if total == 0 {
        return Vec::new();
    }
    let mut moves = Vec::new();
    while moves.len() < cfg.max_moves {
        let Some((src, &src_load)) =
            load.iter().enumerate().max_by_key(|&(g, &l)| (l, std::cmp::Reverse(g)))
        else {
            break; // unreachable: groups >= 2 was checked above
        };
        let Some((dst, &dst_load)) = load.iter().enumerate().min_by_key(|&(g, &l)| (l, g)) else {
            break;
        };
        // Trigger on the *current* max/mean ratio: max·1000 > t·mean
        // ⇔ max·1000·groups > t·total (all integer, overflow-safe in
        // u128).
        let imbalanced = u128::from(src_load) * 1000 * groups as u128
            > u128::from(cfg.threshold_x1000) * u128::from(total);
        if src == dst || !imbalanced {
            break;
        }
        // The heaviest cell of the overloaded group that still improves:
        // strict improvement (src stays heavier than dst becomes) keeps
        // the greedy monotone, so it terminates and never oscillates.
        let candidate = (0..owner.len())
            .filter(|&c| owner[c] as usize == src && weights[c] > 0)
            .filter(|&c| dst_load + weights[c] < src_load)
            .min_by_key(|&c| (std::cmp::Reverse(weights[c]), occupancy[c], c));
        let Some(cell) = candidate else { break };
        owner[cell] = dst as u32;
        load[src] -= weights[cell];
        load[dst] += weights[cell];
        moves.push((ShardId(cell as u32), dst as u32));
    }
    moves
}

/// The stateful decision driver shared by live serving and replay: holds
/// the routing table, the loads at the previous boundary, and the
/// boundary counter. Feeding the same boundary load samples in the same
/// order always produces the same records — which is exactly what
/// [`replay_trace_rebalancing`] exploits to verify a live run's log.
#[derive(Debug, Clone)]
pub struct Rebalancer {
    cfg: RebalanceConfig,
    table: RoutingTable,
    /// Cumulative per-cell loads at the previous boundary (zeros before
    /// the first): a boundary's decision weights are the deltas.
    prev: Vec<CellLoad>,
    /// Boundaries decided so far; boundary `k` sits after `k·interval`
    /// accepted requests, so the next one fires at
    /// `(boundary + 1)·interval`.
    boundary: u64,
}

impl Rebalancer {
    /// A rebalancer over `table`'s cells, with no boundaries decided yet.
    #[must_use]
    pub fn new(cfg: RebalanceConfig, table: RoutingTable) -> Self {
        let prev = vec![CellLoad::default(); table.num_cells()];
        Self { cfg, table, prev, boundary: 0 }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &RebalanceConfig {
        &self.cfg
    }

    /// The current routing table (epoch = boundaries decided).
    #[must_use]
    pub fn table(&self) -> &RoutingTable {
        &self.table
    }

    /// Boundaries decided so far.
    #[must_use]
    pub fn boundaries(&self) -> u64 {
        self.boundary
    }

    /// Absolute accepted-request count at which the next boundary fires.
    /// Absolute (not "requests since the last boundary") so a rebalancer
    /// seeded mid-log by recovery agrees with one that lived through the
    /// whole stream.
    #[must_use]
    pub fn next_boundary_at(&self) -> u64 {
        (self.boundary + 1).saturating_mul(self.cfg.interval)
    }

    /// Decides one boundary from the per-cell **cumulative** loads at
    /// the boundary prefix: plans against the deltas since the previous
    /// boundary, applies the moves (bumping the table epoch — once per
    /// boundary, moves or not), and returns the record to log.
    ///
    /// # Errors
    /// A loads vector of the wrong length, or cumulative counters that
    /// went backwards — both caller/state corruption, never a legal
    /// stream.
    pub fn on_boundary(&mut self, loads: &[CellLoad]) -> Result<RebalanceRecord, String> {
        if loads.len() != self.table.num_cells() {
            return Err(format!(
                "boundary sampled {} cells but the routing table covers {}",
                loads.len(),
                self.table.num_cells()
            ));
        }
        let mut weights = Vec::with_capacity(loads.len());
        let mut occupancy = Vec::with_capacity(loads.len());
        for (cell, (now, before)) in loads.iter().zip(&self.prev).enumerate() {
            let (Some(dr), Some(dp)) = (
                now.rounds.checked_sub(before.rounds),
                now.paid_rounds.checked_sub(before.paid_rounds),
            ) else {
                return Err(format!("cell {cell}: cumulative load went backwards"));
            };
            weights.push(dr + dp);
            occupancy.push(now.occupancy);
        }
        let moves = plan(&weights, &occupancy, &self.table, &self.cfg);
        let epoch = self.table.apply(&moves).map_err(|e| e.to_string())?;
        self.boundary += 1;
        self.prev.clear();
        self.prev.extend_from_slice(loads);
        Ok(RebalanceRecord {
            boundary: self.boundary,
            epoch,
            loads: loads.to_vec(),
            moves: moves.into_iter().map(|(c, g)| (c.0, g)).collect(),
        })
    }

    /// Advances this rebalancer over a record read from a durable log
    /// **without recomputing the decision** — the crash-recovery seed:
    /// the records in the log prefix a snapshot already covers are
    /// complete and consistent (torn ones were truncated with the tail),
    /// so folding them reconstructs the table, the previous-boundary
    /// loads and the boundary counter at the snapshot point. Every
    /// boundary *after* the seed is recomputed, so a forged prefix
    /// record still cannot steer decisions it does not itself contain.
    ///
    /// # Errors
    /// Out-of-order boundaries, wrong cell counts, invalid moves, or an
    /// epoch that does not match the applied table.
    pub fn fold_record(&mut self, record: &RebalanceRecord) -> Result<(), String> {
        if record.boundary != self.boundary + 1 {
            return Err(format!(
                "rebalance record for boundary {} cannot follow boundary {}",
                record.boundary, self.boundary
            ));
        }
        if record.loads.len() != self.table.num_cells() {
            return Err(format!(
                "rebalance record covers {} cells but the routing table has {}",
                record.loads.len(),
                self.table.num_cells()
            ));
        }
        let moves: Vec<(ShardId, u32)> =
            record.moves.iter().map(|&(c, g)| (ShardId(c), g)).collect();
        let epoch = self.table.apply(&moves).map_err(|e| e.to_string())?;
        if epoch != record.epoch {
            return Err(format!(
                "rebalance record claims epoch {} but applying its moves yields {epoch}",
                record.epoch
            ));
        }
        self.boundary = record.boundary;
        self.prev.clear();
        self.prev.extend_from_slice(&record.loads);
        Ok(())
    }
}

/// What [`replay_trace_rebalancing`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RebalanceReplay {
    /// Every boundary decision recomputed during the replay, in order —
    /// the full rebalance schedule of the replayed segment.
    pub schedule: Vec<RebalanceRecord>,
    /// Requests replayed.
    pub replayed: u64,
    /// Records found in the trace and verified bit-identical to the
    /// recomputed decision. `schedule.len() - verified` boundaries had
    /// no surviving record (legal only for a crash-torn final record).
    pub verified: u64,
    /// The stream ended inside a record (crash tear): the replay covers
    /// the longest consistent prefix.
    pub torn_tail: bool,
}

/// Replays a (possibly rebalance-flagged) trace through `engine`,
/// recomputing the rebalance schedule from the request stream and
/// verifying every surviving record against it.
///
/// `engine` must be the **cells engine** — one shard per
/// [`Rebalancer`] cell — positioned at the stream point `reader` and
/// `rebalancer` agree on (fresh engine + fresh reader + fresh
/// rebalancer, or snapshot-restored engine + seeked reader + seeded
/// rebalancer). Boundaries fire on the reader's absolute record count,
/// so both cases recompute the identical schedule.
///
/// A torn tail (`UnexpectedEof`) ends the replay normally, like
/// [`ShardedEngine::replay_tail`]; in-universe corruption is a hard
/// error.
///
/// # Errors
/// Trace corruption, a record that contradicts the recomputed decision
/// (the log lies about its own history), universe/shape mismatches,
/// routing errors, and protocol violations.
pub fn replay_trace_rebalancing<R: std::io::Read>(
    engine: &mut ShardedEngine<'_>,
    reader: &mut TraceReader<R>,
    rebalancer: &mut Rebalancer,
    chunk: &mut Vec<Request>,
) -> Result<RebalanceReplay, EngineError> {
    let plain = |message: String| EngineError { shard: None, message };
    if engine.num_shards() != rebalancer.table().num_cells() {
        return Err(plain(format!(
            "engine has {} shards but the rebalancer routes {} cells",
            engine.num_shards(),
            rebalancer.table().num_cells()
        )));
    }
    const DEFAULT_REPLAY_CHUNK: usize = 64 * 1024;
    if chunk.capacity() == 0 {
        chunk.reserve_exact(DEFAULT_REPLAY_CHUNK);
    }
    let limit = chunk.capacity();
    chunk.clear();
    let mut out = RebalanceReplay::default();
    let mut last_verified = rebalancer.boundaries();
    loop {
        match reader.next_event() {
            Ok(Some(TraceEvent::Request(r))) => {
                chunk.push(r);
                if reader.records_read() == rebalancer.next_boundary_at() {
                    out.replayed += chunk.len() as u64;
                    engine.submit_batch(chunk)?;
                    chunk.clear();
                    let loads = engine.cell_loads()?;
                    let record = rebalancer.on_boundary(&loads).map_err(plain)?;
                    out.schedule.push(record);
                } else if chunk.len() >= limit {
                    out.replayed += chunk.len() as u64;
                    engine.submit_batch(chunk)?;
                    chunk.clear();
                }
            }
            Ok(Some(TraceEvent::Rebalance(record))) => {
                let Some(expect) = out.schedule.last() else {
                    return Err(plain(format!(
                        "rebalance record for boundary {} appears before any boundary \
                         was crossed",
                        record.boundary
                    )));
                };
                if record.boundary <= last_verified {
                    return Err(plain(format!(
                        "duplicate rebalance record for boundary {}",
                        record.boundary
                    )));
                }
                if record != *expect {
                    return Err(plain(format!(
                        "rebalance record for boundary {} does not match the decision \
                         recomputed from the request stream (recomputed boundary {}, \
                         epoch {}, {} moves)",
                        record.boundary,
                        expect.boundary,
                        expect.epoch,
                        expect.moves.len()
                    )));
                }
                last_verified = record.boundary;
                out.verified += 1;
            }
            Ok(None) => break,
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                out.torn_tail = true;
                break;
            }
            Err(e) => return Err(plain(format!("trace replay failed: {e}"))),
        }
    }
    if !chunk.is_empty() {
        out.replayed += chunk.len() as u64;
        engine.submit_batch(chunk)?;
        chunk.clear();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use otc_core::forest::Forest;
    use otc_core::policy::CachePolicy;
    use otc_core::tc::{TcConfig, TcFast};
    use otc_core::tree::{NodeId, Tree};
    use otc_util::SplitMix64;
    use std::sync::Arc;

    use crate::engine::EngineConfig;
    use otc_workloads::trace::{TraceHeader, TraceWriter, TRACE_FLAG_REBALANCE};

    fn factory(tree: Arc<Tree>, _s: ShardId) -> Box<dyn CachePolicy> {
        Box::new(TcFast::new(tree, TcConfig::new(2, 3)))
    }

    fn skewed(n: usize, len: usize, seed: u64, hot: u32) -> Vec<Request> {
        // 70% of traffic hammers one hot node; the rest is uniform.
        let mut rng = SplitMix64::new(seed);
        (0..len)
            .map(|_| {
                let v = if rng.chance(0.7) { NodeId(hot) } else { NodeId(rng.index(n) as u32) };
                if rng.chance(0.3) {
                    Request::neg(v)
                } else {
                    Request::pos(v)
                }
            })
            .collect()
    }

    #[test]
    fn plan_is_deterministic_and_respects_the_trigger() {
        let cfg = RebalanceConfig::new(100).threshold_x1000(1250).max_moves(4);
        let table = RoutingTable::new(vec![0, 0, 1, 1], 2).unwrap();
        // Balanced loads: no moves regardless of the cell spread.
        assert!(plan(&[10, 10, 10, 10], &[5, 5, 5, 5], &table, &cfg).is_empty());
        // All the heat on group 0: the heavy cell moves to group 1.
        let moves = plan(&[100, 5, 1, 1], &[9, 2, 1, 1], &table, &cfg);
        assert_eq!(moves.first(), Some(&(ShardId(0), 1)));
        // Deterministic: same inputs, same plan.
        assert_eq!(moves, plan(&[100, 5, 1, 1], &[9, 2, 1, 1], &table, &cfg));
        // A single group can never move anything.
        let solo = RoutingTable::new(vec![0, 0, 0, 0], 1).unwrap();
        assert!(plan(&[100, 5, 1, 1], &[9, 2, 1, 1], &solo, &cfg).is_empty());
        // Occupancy breaks weight ties: the lighter cache moves.
        let moves = plan(&[50, 50, 0, 0], &[8, 2, 0, 0], &table, &cfg);
        assert_eq!(moves.first(), Some(&(ShardId(1), 1)));
    }

    #[test]
    fn plan_moves_improve_strictly_and_terminate() {
        let cfg = RebalanceConfig::new(10).threshold_x1000(1000).max_moves(100);
        let table = RoutingTable::new(vec![0; 6], 3).unwrap();
        let weights = [30u64, 20, 10, 5, 3, 1];
        let occ = [1u64; 6];
        let moves = plan(&weights, &occ, &table, &cfg);
        assert!(!moves.is_empty());
        // Replaying the plan yields strictly better max load than the
        // start, and no cell moves twice.
        let mut owner = table.owners().to_vec();
        let mut seen = std::collections::BTreeSet::new();
        for &(c, g) in &moves {
            assert!(seen.insert(c), "cell {c:?} moved twice in one plan");
            owner[c.index()] = g;
        }
        let mut load = [0u64; 3];
        for (c, &w) in weights.iter().enumerate() {
            load[owner[c] as usize] += w;
        }
        assert!(*load.iter().max().unwrap() < weights.iter().sum::<u64>());
    }

    #[test]
    fn on_boundary_uses_window_deltas_not_cumulative_loads() {
        let cfg = RebalanceConfig::new(100).threshold_x1000(1000);
        let table = RoutingTable::new(vec![0, 1], 2).unwrap();
        let mut reb = Rebalancer::new(cfg, table);
        // Boundary 1: cell 0 did all the work.
        let rec = reb
            .on_boundary(&[
                CellLoad { rounds: 100, paid_rounds: 50, occupancy: 3 },
                CellLoad { rounds: 0, paid_rounds: 0, occupancy: 0 },
            ])
            .unwrap();
        assert_eq!((rec.boundary, rec.epoch), (1, 1));
        // Two cells, two groups, each group one cell: moving the hot
        // cell would just swap the imbalance, so no strict improvement.
        assert!(rec.moves.is_empty());
        // Boundary 2: cumulative totals still favour cell 0, but the
        // *window* was all cell 1 — deltas, not totals, must drive it.
        let rec = reb
            .on_boundary(&[
                CellLoad { rounds: 100, paid_rounds: 50, occupancy: 3 },
                CellLoad { rounds: 90, paid_rounds: 40, occupancy: 2 },
            ])
            .unwrap();
        assert_eq!((rec.boundary, rec.epoch), (2, 2));
        assert!(rec.moves.is_empty(), "1 cell per group: nothing to move");
        // Going backwards is corruption.
        assert!(reb.on_boundary(&[CellLoad::default(); 2]).is_err());
    }

    #[test]
    fn fold_record_reconstructs_the_decision_state() {
        let cfg = RebalanceConfig::new(50).threshold_x1000(1000);
        let tree = Tree::star(8);
        let forest = Forest::cells(&tree);
        let cells = forest.num_shards();
        let table = RoutingTable::lpt(&vec![1; cells], 2);
        let mut live = Rebalancer::new(cfg, table.clone());
        let mut loads = vec![CellLoad::default(); cells];
        let mut records = Vec::new();
        let mut rng = SplitMix64::new(9);
        for _ in 0..5 {
            for (c, l) in loads.iter_mut().enumerate() {
                l.rounds += rng.index(40 + 100 * c) as u64;
                l.paid_rounds = l.rounds / 2;
                l.occupancy = (c % 3) as u64;
            }
            records.push(live.on_boundary(&loads).unwrap());
        }
        // A fresh rebalancer folding the records lands in the identical
        // state: same table, same epoch, same next decision.
        let mut seeded = Rebalancer::new(cfg, table);
        for r in &records {
            seeded.fold_record(r).unwrap();
        }
        assert_eq!(seeded.table().owners(), live.table().owners());
        assert_eq!(seeded.table().epoch(), live.table().epoch());
        assert_eq!(seeded.boundaries(), live.boundaries());
        for (c, l) in loads.iter_mut().enumerate() {
            l.rounds += 10 + c as u64;
        }
        assert_eq!(seeded.on_boundary(&loads).unwrap(), live.on_boundary(&loads).unwrap());
        // Out-of-order and epoch-forged records are refused.
        let mut bad = Rebalancer::new(cfg, RoutingTable::lpt(&vec![1; cells], 2));
        assert!(bad.fold_record(&records[1]).is_err(), "skipping a boundary");
        let mut forged = records[0].clone();
        forged.epoch += 7;
        assert!(bad.fold_record(&forged).is_err(), "epoch must match the applied table");
    }

    #[test]
    fn replay_recomputes_and_verifies_a_recorded_schedule() {
        // A "live" cells run: execute requests, record boundaries into a
        // rebalance-flagged trace. Then replay the trace and demand the
        // identical schedule plus per-cell reports.
        let tree = Tree::star(12);
        let forest = Forest::cells(&tree);
        let cells = forest.num_shards();
        let reqs = skewed(tree.len(), 3000, 5, 3);
        let interval = 500u64;
        let cfg = RebalanceConfig::new(interval).threshold_x1000(1000);
        let table = || RoutingTable::lpt(&vec![1u64; cells], 3);

        let header = TraceHeader::single_tree(tree.len(), 5, "rebalance-live");
        let mut w =
            TraceWriter::with_flags(std::io::Cursor::new(Vec::new()), header, TRACE_FLAG_REBALANCE)
                .unwrap();
        let mut live = ShardedEngine::new(forest.clone(), &factory, EngineConfig::new(2));
        let mut live_reb = Rebalancer::new(cfg, table());
        let mut live_schedule = Vec::new();
        for (i, &r) in reqs.iter().enumerate() {
            live.submit(r).expect("valid");
            w.push(r).unwrap();
            if (i as u64 + 1).is_multiple_of(interval) {
                let loads = live.cell_loads().expect("valid");
                let rec = live_reb.on_boundary(&loads).unwrap();
                w.push_rebalance(&rec).unwrap();
                live_schedule.push(rec);
            }
        }
        let bytes = w.finish().unwrap().into_inner();
        assert!(live_schedule.iter().any(|r| !r.moves.is_empty()), "skew must trigger moves");

        let mut replay = ShardedEngine::new(forest, &factory, EngineConfig::new(2));
        let mut reader = TraceReader::new(std::io::Cursor::new(&bytes)).unwrap();
        let mut reb = Rebalancer::new(cfg, table());
        let mut chunk = Vec::new();
        let out = replay_trace_rebalancing(&mut replay, &mut reader, &mut reb, &mut chunk)
            .expect("replay verifies");
        assert_eq!(out.schedule, live_schedule, "identical rebalance schedule");
        assert_eq!(out.verified, live_schedule.len() as u64, "every record verified");
        assert_eq!(out.replayed, reqs.len() as u64);
        assert!(!out.torn_tail);
        assert_eq!(reb.table().owners(), live_reb.table().owners());
        assert_eq!(
            replay.into_reports().expect("valid"),
            live.into_reports().expect("valid"),
            "per-cell reports are placement- and replay-invariant"
        );
    }

    #[test]
    fn replay_rejects_a_record_that_contradicts_the_stream() {
        let tree = Tree::star(6);
        let forest = Forest::cells(&tree);
        let cells = forest.num_shards();
        let reqs = skewed(tree.len(), 200, 3, 1);
        let cfg = RebalanceConfig::new(100).threshold_x1000(1000);
        let header = TraceHeader::single_tree(tree.len(), 3, "forged");
        let mut w =
            TraceWriter::with_flags(std::io::Cursor::new(Vec::new()), header, TRACE_FLAG_REBALANCE)
                .unwrap();
        let mut live = ShardedEngine::new(forest.clone(), &factory, EngineConfig::new(2));
        let mut reb = Rebalancer::new(cfg, RoutingTable::lpt(&vec![1; cells], 2));
        for (i, &r) in reqs.iter().enumerate() {
            live.submit(r).expect("valid");
            w.push(r).unwrap();
            if (i as u64 + 1).is_multiple_of(100) {
                let mut rec = reb.on_boundary(&live.cell_loads().expect("valid")).unwrap();
                if i as u64 + 1 == 200 {
                    // Forge the second record's loads.
                    rec.loads[0].rounds += 1;
                }
                w.push_rebalance(&rec).unwrap();
            }
        }
        let bytes = w.finish().unwrap().into_inner();
        let mut replay = ShardedEngine::new(forest, &factory, EngineConfig::new(2));
        let mut reader = TraceReader::new(std::io::Cursor::new(&bytes)).unwrap();
        let mut reb = Rebalancer::new(cfg, RoutingTable::lpt(&vec![1; cells], 2));
        let err = replay_trace_rebalancing(&mut replay, &mut reader, &mut reb, &mut Vec::new())
            .unwrap_err();
        assert!(err.message.contains("does not match"), "got: {err}");
    }

    #[test]
    fn replay_tolerates_a_torn_final_record() {
        // Crash mid-record-write: the record is truncated away; replay
        // covers every complete request and recomputes the decision the
        // torn record would have anchored.
        let tree = Tree::star(6);
        let forest = Forest::cells(&tree);
        let cells = forest.num_shards();
        let reqs = skewed(tree.len(), 100, 7, 1);
        let cfg = RebalanceConfig::new(100).threshold_x1000(1000);
        let header = TraceHeader::single_tree(tree.len(), 7, "torn");
        let mut w =
            TraceWriter::with_flags(std::io::Cursor::new(Vec::new()), header, TRACE_FLAG_REBALANCE)
                .unwrap();
        let mut live = ShardedEngine::new(forest.clone(), &factory, EngineConfig::new(2));
        let mut reb = Rebalancer::new(cfg, RoutingTable::lpt(&vec![1; cells], 2));
        for &r in &reqs {
            live.submit(r).expect("valid");
            w.push(r).unwrap();
        }
        let rec = reb.on_boundary(&live.cell_loads().expect("valid")).unwrap();
        w.push_rebalance(&rec).unwrap();
        let mut disk = w.finish().unwrap().into_inner();
        disk.truncate(disk.len() - 2); // tear inside the trailing record

        let mut replay = ShardedEngine::new(forest, &factory, EngineConfig::new(2));
        let mut reader = TraceReader::new(std::io::Cursor::new(&disk)).unwrap();
        let mut reb2 = Rebalancer::new(cfg, RoutingTable::lpt(&vec![1; cells], 2));
        let out = replay_trace_rebalancing(&mut replay, &mut reader, &mut reb2, &mut Vec::new())
            .expect("torn tail tolerated");
        assert!(out.torn_tail);
        assert_eq!(out.replayed, 100);
        assert_eq!(out.verified, 0, "the only record was torn away");
        assert_eq!(out.schedule, vec![rec], "the decision is recomputed anyway");
        assert_eq!(replay.into_reports().expect("valid"), live.into_reports().expect("valid"));
    }
}
