//! The sharded execution engine: one API over forests of trees.
//!
//! [`ShardedEngine`] owns a [`Forest`] (one or more trees partitioned into
//! shards), one boxed [`CachePolicy`] per shard (built by a
//! [`PolicyFactory`]), and one verified `Driver` per shard — the same
//! mirror/validation/instrumentation state the classic drivers use, so the
//! zero-allocation round contract holds **per shard**: one `ActionBuffer`
//! plus validation scratch per shard, reused across all rounds.
//!
//! Requests are *globally* addressed; a flat routing table (O(1), no
//! hashing) maps each to its `(shard, local node)` home:
//!
//! * [`ShardedEngine::submit`] — one request, processed inline;
//! * [`ShardedEngine::submit_batch`] — routes a batch into per-shard
//!   queues, then drains all shards **in parallel** on scoped worker
//!   threads ([`otc_util::parallel_map_mut`]); per-shard order is the
//!   batch's arrival order, so results are deterministic regardless of
//!   thread count;
//! * [`ShardedEngine::submit_trace`] — parses a serialized request trace
//!   (`otc_workloads::trace` line format) and batch-submits it;
//! * [`ShardedEngine::replay_trace`] — streams a **binary** trace
//!   (`otc_workloads::trace::TraceReader`) through the engine in reused
//!   chunks, so persisted workloads replay bit-identically without being
//!   materialised;
//! * [`ShardedEngine::map_shards`] — runs a caller-supplied per-shard loop
//!   (with step-level access through [`ShardHandle`]) across all shards in
//!   parallel; this is how application pipelines with their own event
//!   semantics (e.g. `otc-sdn`'s FIB pipeline) ride the engine.
//!
//! The classic entry points are now thin single-shard adapters over this
//! engine: [`crate::run_policy`] (per-round), [`crate::run_stream`]
//! (chunked + audited), and `otc_sdn::run_fib` (FIB events). A 1-shard
//! engine produces bit-identical [`Report`]s to those drivers —
//! `crates/sim/tests/proptest_engine.rs` pins that differentially.

use std::sync::Arc;

use otc_core::cache::CacheSet;
use otc_core::forest::{Forest, ShardId};
use otc_core::policy::{CachePolicy, PolicyFactory};
use otc_core::request::Request;
use otc_core::tree::Tree;

use crate::report::Report;
use crate::runner::{Driver, SimConfig};
use crate::telemetry::{Timeline, WindowRecord};

/// Engine options: a builder-style superset of [`SimConfig`] (verification
/// mode, α, instrumentation) plus the engine-level knobs (audit/fold
/// cadence for batches, worker threads for parallel shard execution).
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// The per-node reorganisation cost α.
    pub alpha: u64,
    /// Verify subforest/validity/capacity invariants after every action.
    pub validate: bool,
    /// Track fields, periods and phases (small constant overhead).
    pub instrument: bool,
    /// Batch chunking cadence: cost accounting folds into the report once
    /// per this many requests, and in debug builds the policy's
    /// [`CachePolicy::audit`] self-check runs at every chunk boundary.
    /// `None` (the default) processes each batch as one chunk with no
    /// audits — the classic `run_policy` behaviour.
    pub audit_chunk: Option<usize>,
    /// Worker threads for [`ShardedEngine::submit_batch`] /
    /// [`ShardedEngine::map_shards`]. `1` (the default) drains shards
    /// sequentially on the calling thread. Thread count never affects
    /// results — shards are independent and internally sequential.
    pub threads: usize,
    /// Collect windowed per-shard telemetry ([`crate::telemetry::Timeline`]):
    /// a [`crate::telemetry::WindowRecord`] snapshots every `audit_every`
    /// rounds per shard (cost breakdown, occupancy, action-buffer
    /// high-water). Off by default; hot-path cost is one counter diff per
    /// window, no per-round allocation. Without a chunk cadence the whole
    /// run becomes a single partial window.
    pub telemetry: bool,
}

impl EngineConfig {
    /// Standard configuration: full validation and instrumentation,
    /// single-threaded, no chunking.
    #[must_use]
    pub fn new(alpha: u64) -> Self {
        Self {
            alpha,
            validate: true,
            instrument: true,
            audit_chunk: None,
            threads: 1,
            telemetry: false,
        }
    }

    /// Fast configuration for throughput runs: no per-action validation,
    /// no instrumentation (paid-flag and flush-payload checks still run —
    /// they are O(1)/O(|flush|) and gate cost misreporting).
    #[must_use]
    pub fn bare(alpha: u64) -> Self {
        Self {
            alpha,
            validate: false,
            instrument: false,
            audit_chunk: None,
            threads: 1,
            telemetry: false,
        }
    }

    /// Sets the per-action validation mode.
    #[must_use]
    pub fn validate(mut self, on: bool) -> Self {
        self.validate = on;
        self
    }

    /// Sets fields/periods/phases instrumentation.
    #[must_use]
    pub fn instrument(mut self, on: bool) -> Self {
        self.instrument = on;
        self
    }

    /// Enables chunked batch accounting with (debug-build) audits every
    /// `chunk` requests per shard — the `run_stream` cadence.
    ///
    /// # Panics
    /// Panics if `chunk == 0`.
    #[must_use]
    pub fn audit_every(mut self, chunk: usize) -> Self {
        assert!(chunk > 0, "chunk_size must be positive");
        self.audit_chunk = Some(chunk);
        self
    }

    /// Sets the worker thread count for batch ingestion.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables windowed per-shard telemetry (see
    /// [`crate::telemetry::Timeline`]); pair with
    /// [`EngineConfig::audit_every`] to set the window length.
    #[must_use]
    pub fn telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// The per-round simulator options this configuration implies.
    #[must_use]
    pub fn sim(&self) -> SimConfig {
        SimConfig { alpha: self.alpha, validate: self.validate, instrument: self.instrument }
    }
}

impl From<SimConfig> for EngineConfig {
    fn from(cfg: SimConfig) -> Self {
        Self {
            alpha: cfg.alpha,
            validate: cfg.validate,
            instrument: cfg.instrument,
            audit_chunk: None,
            threads: 1,
            telemetry: false,
        }
    }
}

/// A protocol violation (or configuration error) surfaced by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineError {
    /// The shard whose policy violated the protocol, if attributable.
    pub shard: Option<ShardId>,
    /// The violation, in the simulator's classic message format.
    pub message: String,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.shard {
            Some(s) => write!(f, "shard {s}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for EngineError {}

/// What one submitted request did (single-request entry point only; batch
/// submission accounts in bulk through the per-shard [`Report`]s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubmitOutcome {
    /// The shard the request was routed to.
    pub shard: ShardId,
    /// Whether the request paid the service cost.
    pub paid: bool,
    /// Nodes fetched/evicted this round (each costs α).
    pub nodes_touched: u64,
}

/// The shard tree: owned by the forest, or borrowed from the caller (the
/// classic single-shard adapters drive a `&Tree` without cloning it).
pub(crate) enum TreeRef<'p> {
    Owned(Arc<Tree>),
    Borrowed(&'p Tree),
}

impl TreeRef<'_> {
    #[inline]
    pub(crate) fn get(&self) -> &Tree {
        match self {
            TreeRef::Owned(t) => t,
            TreeRef::Borrowed(t) => t,
        }
    }
}

/// Snapshot of the per-round [`Report`] counters at the last telemetry
/// window boundary; a [`WindowRecord`] is the diff against this.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct WindowBase {
    pub(crate) rounds: u64,
    pub(crate) paid_rounds: u64,
    pub(crate) fetch_events: u64,
    pub(crate) evict_events: u64,
    pub(crate) flush_events: u64,
    pub(crate) nodes_fetched: u64,
    pub(crate) nodes_evicted: u64,
    pub(crate) nodes_flushed: u64,
}

impl WindowBase {
    pub(crate) fn of(r: &Report) -> Self {
        Self {
            rounds: r.rounds,
            paid_rounds: r.paid_rounds,
            fetch_events: r.fetch_events,
            evict_events: r.evict_events,
            flush_events: r.flush_events,
            nodes_fetched: r.nodes_fetched,
            nodes_evicted: r.nodes_evicted,
            nodes_flushed: r.nodes_flushed,
        }
    }
}

/// All per-shard state: the policy, its verified driver (mirror, scratch,
/// action buffer — all reused across rounds), the accumulating report, and
/// the batch staging queue (capacity reused across batches). Detachable
/// from the engine into a [`crate::worker::ShardWorker`] for long-lived
/// serving threads.
pub(crate) struct ShardState<'p> {
    pub(crate) tree: TreeRef<'p>,
    pub(crate) policy: Box<dyn CachePolicy + 'p>,
    pub(crate) driver: Driver,
    pub(crate) report: Report,
    pub(crate) queue: Vec<Request>,
    pub(crate) round: usize,
    /// First protocol violation observed on this shard (sticky): set by
    /// [`ShardHandle::step`] so violations inside [`ShardedEngine::map_shards`]
    /// closures poison the engine even if the closure discards the error.
    pub(crate) failed: Option<String>,
    /// Closed telemetry windows (`shard` field filled at collection).
    pub(crate) windows: Vec<WindowRecord>,
    /// Report-counter snapshot at the open window's first round.
    pub(crate) win_base: WindowBase,
}

impl ShardState<'_> {
    /// Computes the open window's record against `win_base` (`None` when
    /// no round has run since the last boundary).
    pub(crate) fn open_window(&self, partial: bool) -> Option<WindowRecord> {
        let r = &self.report;
        let b = self.win_base;
        let rounds = r.rounds - b.rounds;
        if rounds == 0 {
            return None;
        }
        Some(WindowRecord {
            shard: 0, // filled at collection
            window: self.windows.len() as u64,
            start_round: b.rounds,
            rounds,
            paid_rounds: r.paid_rounds - b.paid_rounds,
            fetch_events: r.fetch_events - b.fetch_events,
            evict_events: r.evict_events - b.evict_events,
            flush_events: r.flush_events - b.flush_events,
            nodes_fetched: r.nodes_fetched - b.nodes_fetched,
            nodes_evicted: (r.nodes_evicted - b.nodes_evicted)
                - (r.nodes_flushed - b.nodes_flushed),
            nodes_flushed: r.nodes_flushed - b.nodes_flushed,
            occupancy: self.driver.cache_len(),
            buf_high_water: self.driver.buf_high_water(),
            partial,
        })
    }

    /// Appends this shard's closed windows — plus, when telemetry is on,
    /// the open partial one — to `out` with the shard id stamped in. The
    /// one definition behind both `ShardedEngine::timeline` and
    /// `ShardWorker::windows`, so the two views can never drift.
    pub(crate) fn collect_windows(
        &self,
        shard: u32,
        telemetry_on: bool,
        out: &mut Vec<WindowRecord>,
    ) {
        for &w in &self.windows {
            out.push(WindowRecord { shard, ..w });
        }
        if telemetry_on {
            if let Some(rec) = self.open_window(true) {
                out.push(WindowRecord { shard, ..rec });
            }
        }
    }

    /// Telemetry boundary check, run once per round: closes the open
    /// window when it has spanned `audit_chunk` rounds. One `Vec` push per
    /// window; rounds in between only pay this counter comparison.
    #[inline]
    pub(crate) fn window_tick(&mut self, cfg: &EngineConfig) {
        if !cfg.telemetry {
            return;
        }
        let Some(chunk) = cfg.audit_chunk else { return };
        if (self.report.rounds - self.win_base.rounds) as usize >= chunk {
            if let Some(rec) = self.open_window(false) {
                self.windows.push(rec);
            }
            self.driver.take_buf_high_water();
            self.win_base = WindowBase::of(&self.report);
        }
    }
    /// Drives `reqs` through this shard in order, folding cost accounting
    /// into the report once per chunk (`audit_chunk`, or the whole slice).
    pub(crate) fn drain(&mut self, reqs: &[Request], cfg: &EngineConfig) -> Result<(), String> {
        let sim = cfg.sim();
        let n = self.tree.get().len();
        let chunk_size = cfg.audit_chunk.unwrap_or(usize::MAX);
        for chunk in reqs.chunks(chunk_size) {
            let mut service = 0u64;
            let mut touched = 0u64;
            for &req in chunk {
                if req.node.index() >= n {
                    return Err(format!(
                        "round {}: request targets node {} but the shard tree has {n} nodes",
                        self.round, req.node
                    ));
                }
                let (paid, t) = self.driver.round(
                    self.tree.get(),
                    &mut *self.policy,
                    req,
                    self.round,
                    sim,
                    &mut self.report,
                )?;
                service += u64::from(paid);
                touched += t;
                self.round += 1;
                self.window_tick(cfg);
            }
            self.report.cost.service += service;
            self.report.cost.reorg += sim.alpha * touched;
            if cfg.audit_chunk.is_some() {
                #[cfg(debug_assertions)]
                self.policy.audit().map_err(|e| {
                    format!("round {}: policy audit failed at chunk boundary: {e}", self.round)
                })?;
            }
        }
        Ok(())
    }

    /// Drains the staged queue, keeping its storage for the next batch.
    pub(crate) fn drain_queue(&mut self, cfg: &EngineConfig) -> Result<(), String> {
        let queue = std::mem::take(&mut self.queue);
        let result = self.drain(&queue, cfg);
        self.queue = queue;
        self.queue.clear();
        result
    }
}

/// Step-level access to one shard, handed to [`ShardedEngine::map_shards`]
/// closures. All node ids seen through a handle are **shard-local**.
pub struct ShardHandle<'a, 'p> {
    pub(crate) state: &'a mut ShardState<'p>,
    pub(crate) shard: ShardId,
    pub(crate) cfg: EngineConfig,
}

impl ShardHandle<'_, '_> {
    /// Drives one shard-local request through the shard's verified driver
    /// and folds its cost into the shard report.
    ///
    /// # Errors
    /// The simulator's classic protocol violations.
    pub fn step(&mut self, req: Request) -> Result<SubmitOutcome, String> {
        let sim = self.cfg.sim();
        let st = &mut *self.state;
        if let Some(message) = &st.failed {
            return Err(message.clone());
        }
        if req.node.index() >= st.tree.get().len() {
            let message = format!(
                "round {}: request targets node {} but the shard tree has {} nodes",
                st.round,
                req.node,
                st.tree.get().len()
            );
            st.failed = Some(message.clone());
            return Err(message);
        }
        let round =
            st.driver.round(st.tree.get(), &mut *st.policy, req, st.round, sim, &mut st.report);
        let (paid, touched) = match round {
            Ok(out) => out,
            Err(message) => {
                st.failed = Some(message.clone());
                return Err(message);
            }
        };
        st.round += 1;
        st.report.cost.service += u64::from(paid);
        st.report.cost.reorg += sim.alpha * touched;
        st.window_tick(&self.cfg);
        Ok(SubmitOutcome { shard: self.shard, paid, nodes_touched: touched })
    }

    /// This shard's id.
    #[must_use]
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// The shard's tree.
    #[must_use]
    pub fn tree(&self) -> &Tree {
        self.state.tree.get()
    }

    /// Read-only view of the shard policy's cache (shard-local ids).
    #[must_use]
    pub fn cache(&self) -> &CacheSet {
        self.state.policy.cache()
    }

    /// The shard policy's name.
    #[must_use]
    pub fn policy_name(&self) -> &'static str {
        self.state.policy.name()
    }
}

/// One `Engine` API over forests of trees: per-shard verified policies,
/// batch submission with O(1) routing, parallel per-shard execution.
///
/// ```
/// use std::sync::Arc;
/// use otc_core::forest::{Forest, ShardId};
/// use otc_core::policy::CachePolicy;
/// use otc_core::tc::{TcConfig, TcFast};
/// use otc_core::tree::Tree;
/// use otc_core::Request;
/// use otc_sim::engine::{EngineConfig, ShardedEngine};
///
/// // A star of 8 leaves split into 4 shards, each with its own TC.
/// let tree = Tree::star(8);
/// let forest = Forest::partition(&tree, 4);
/// let factory = |shard_tree: Arc<Tree>, _shard: ShardId| {
///     Box::new(TcFast::new(shard_tree, TcConfig::new(2, 2))) as Box<dyn CachePolicy>
/// };
/// let mut engine = ShardedEngine::new(forest, &factory, EngineConfig::new(2).threads(4));
///
/// // Globally-addressed batch: the engine routes each request home.
/// let reqs: Vec<Request> = (1..=8).flat_map(|v| {
///     std::iter::repeat(Request::pos(otc_core::tree::NodeId(v))).take(2)
/// }).collect();
/// engine.submit_batch(&reqs).unwrap();
/// let report = engine.into_report().unwrap();
/// assert_eq!(report.cost.service, 16); // every leaf paid α = 2 before its fetch
/// assert_eq!(report.nodes_fetched, 8);
/// ```
pub struct ShardedEngine<'p> {
    /// `None` for the borrowed single-shard adapter (identity routing).
    forest: Option<Forest>,
    shards: Vec<ShardState<'p>>,
    cfg: EngineConfig,
    failed: Option<EngineError>,
    /// Cached [`Forest::is_identity_routing`] (always true without a
    /// forest): lets single-shard batches drain straight from the
    /// caller's slice.
    identity_routing: bool,
    /// Reusable scratch for [`ShardedEngine::submit_batch`]'s atomic
    /// rejection: per-shard queue lengths at batch start.
    batch_marks: Vec<usize>,
}

impl<'p> ShardedEngine<'p> {
    /// Builds an engine over `forest`, asking `factory` for one policy per
    /// shard.
    #[must_use]
    pub fn new(forest: Forest, factory: &dyn PolicyFactory, cfg: EngineConfig) -> Self {
        let shards = (0..forest.num_shards())
            .map(|s| {
                let sid = ShardId(s as u32);
                let tree = Arc::clone(forest.tree(sid));
                let policy: Box<dyn CachePolicy + 'p> = factory.build(Arc::clone(&tree), sid);
                Self::shard_state(TreeRef::Owned(tree), policy, &cfg)
            })
            .collect();
        let identity_routing = forest.is_identity_routing();
        Self {
            forest: Some(forest),
            shards,
            cfg,
            failed: None,
            identity_routing,
            batch_marks: Vec::new(),
        }
    }

    /// A single-shard engine over an owned tree and policy.
    #[must_use]
    pub fn single(tree: Arc<Tree>, policy: Box<dyn CachePolicy + 'p>, cfg: EngineConfig) -> Self {
        let state = Self::shard_state(TreeRef::Owned(Arc::clone(&tree)), policy, &cfg);
        Self {
            forest: Some(Forest::single(tree)),
            shards: vec![state],
            cfg,
            failed: None,
            identity_routing: true,
            batch_marks: Vec::new(),
        }
    }

    /// A single-shard engine borrowing the caller's tree and policy — the
    /// zero-copy adapter path behind [`crate::run_policy`] /
    /// [`crate::run_stream`].
    #[must_use]
    pub fn single_borrowed(
        tree: &'p Tree,
        policy: &'p mut dyn CachePolicy,
        cfg: EngineConfig,
    ) -> Self {
        let state = Self::shard_state(TreeRef::Borrowed(tree), Box::new(policy), &cfg);
        Self {
            forest: None,
            shards: vec![state],
            cfg,
            failed: None,
            identity_routing: true,
            batch_marks: Vec::new(),
        }
    }

    pub(crate) fn shard_state(
        tree: TreeRef<'p>,
        policy: Box<dyn CachePolicy + 'p>,
        cfg: &EngineConfig,
    ) -> ShardState<'p> {
        let n = tree.get().len();
        let report = Report { name: policy.name().to_string(), ..Report::default() };
        let mut driver = Driver::new(n, cfg.sim());
        // Resumable drives: a borrowed policy may already hold cache
        // content from an earlier run; the mirror starts from its real
        // state (empty for freshly built policies).
        driver.adopt_cache(policy.cache());
        ShardState {
            tree,
            policy,
            driver,
            report,
            queue: Vec::new(),
            round: 0,
            failed: None,
            windows: Vec::new(),
            win_base: WindowBase::default(),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> EngineConfig {
        self.cfg
    }

    /// The forest this engine routes over (`None` for the borrowed
    /// single-shard adapter, which routes identically).
    #[must_use]
    pub fn forest(&self) -> Option<&Forest> {
        self.forest.as_ref()
    }

    /// Read-only view of one shard policy's cache (shard-local ids).
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn shard_cache(&self, shard: ShardId) -> &CacheSet {
        self.shards[shard.index()].policy.cache()
    }

    fn check_live(&self) -> Result<(), EngineError> {
        match &self.failed {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    fn fail(&mut self, shard: ShardId, message: String) -> EngineError {
        let e = EngineError { shard: Some(shard), message };
        self.failed = Some(e.clone());
        e
    }

    /// Routes a globally-addressed request. O(1); errors on ids outside
    /// the global space.
    fn route(&self, r: Request) -> Result<(usize, Request), EngineError> {
        match &self.forest {
            Some(f) => {
                if r.node.index() >= f.global_len() {
                    return Err(EngineError {
                        shard: None,
                        message: format!(
                            "request targets node {} but the forest has {} nodes",
                            r.node,
                            f.global_len()
                        ),
                    });
                }
                let (s, local) = f.route_request(r);
                Ok((s.index(), local))
            }
            // Borrowed single shard: identity routing; the drain loop
            // bounds-checks against the tree.
            None => Ok((0, r)),
        }
    }

    /// Submits one globally-addressed request, processed inline, and
    /// reports what it did.
    ///
    /// # Errors
    /// Routing errors and the simulator's classic protocol violations; any
    /// violation poisons the engine (subsequent calls return it again).
    pub fn submit(&mut self, req: Request) -> Result<SubmitOutcome, EngineError> {
        // Anything staged precedes this request: flushing first keeps the
        // global submission order intact when `stage` and `submit` mix.
        self.flush_pending()?;
        let (s, local) = self.route(req)?;
        let sid = ShardId(s as u32);
        let mut handle = ShardHandle { state: &mut self.shards[s], shard: sid, cfg: self.cfg };
        match handle.step(local) {
            Ok(out) => Ok(out),
            Err(message) => Err(self.fail(sid, message)),
        }
    }

    /// Submits a batch of globally-addressed requests: routes each into
    /// its shard's staging queue, then drains all shards in parallel on
    /// `cfg.threads` scoped worker threads. Within a shard, requests are
    /// processed in batch order (after anything already [`ShardedEngine::stage`]d);
    /// thread count never changes any result.
    ///
    /// Queue storage is retained across batches, so once queues reach the
    /// workload's high-water mark a steady-state batch allocates nothing
    /// beyond the O(threads) cost of the worker scope itself (zero with
    /// `threads = 1`).
    ///
    /// # Errors
    /// Routing errors (which reject the whole batch atomically — nothing
    /// from *this* batch is applied; previously staged requests stay
    /// staged) and protocol violations (first failing shard wins); any
    /// violation poisons the engine.
    pub fn submit_batch(&mut self, reqs: &[Request]) -> Result<(), EngineError> {
        self.check_live()?;
        let cfg = self.cfg;
        // Fast path: identity routing (the borrowed adapter, or an owned
        // single shard whose local ids equal the global ids) with nothing
        // staged drains straight from the caller's slice. A 1-shard
        // *partitioned* forest can renumber nodes, so it must route like
        // any other.
        if self.shards.len() == 1 && self.identity_routing && self.shards[0].queue.is_empty() {
            return match self.shards[0].drain(reqs, &cfg) {
                Ok(()) => Ok(()),
                Err(message) => Err(self.fail(ShardId(0), message)),
            };
        }
        // Remember each queue's pre-batch length (reusable scratch, so
        // steady-state batches stay allocation-free): a routing error must
        // unstage exactly this batch's prefix, nothing more.
        let mut marks = std::mem::take(&mut self.batch_marks);
        marks.clear();
        marks.extend(self.shards.iter().map(|st| st.queue.len()));
        for &r in reqs {
            match self.route(r) {
                Ok((s, local)) => self.shards[s].queue.push(local),
                Err(e) => {
                    for (st, &mark) in self.shards.iter_mut().zip(&marks) {
                        st.queue.truncate(mark);
                    }
                    self.batch_marks = marks;
                    return Err(e);
                }
            }
        }
        self.batch_marks = marks;
        self.flush_pending()
    }

    /// Routes one globally-addressed request into its shard's staging
    /// queue **without executing it**, and reports where it went. Staged
    /// requests run on the next [`ShardedEngine::flush_pending`] (or
    /// [`ShardedEngine::submit_batch`]), in staging order per shard — this
    /// is how a caller assembles per-shard batches incrementally (e.g.
    /// from an incoming network stream) and then drains them in parallel
    /// at a moment of its choosing.
    ///
    /// # Errors
    /// Routing errors (the request is not staged); a poisoned engine
    /// returns its stored violation.
    pub fn stage(&mut self, req: Request) -> Result<ShardId, EngineError> {
        self.check_live()?;
        let (s, local) = self.route(req)?;
        self.shards[s].queue.push(local);
        Ok(ShardId(s as u32))
    }

    /// Force-drains every shard's staging queue — all [`ShardedEngine::stage`]d
    /// requests run now, in parallel on `cfg.threads` workers, without
    /// consuming the engine. A no-op when nothing is staged. This is the
    /// barrier half of the `stage`/`flush_pending` pair; [`ShardedEngine::map_shards`]
    /// callers use it to guarantee queues are empty before taking manual
    /// control of the shards.
    ///
    /// # Errors
    /// Protocol violations (first failing shard wins); any violation
    /// poisons the engine.
    pub fn flush_pending(&mut self) -> Result<(), EngineError> {
        self.check_live()?;
        let cfg = self.cfg;
        if self.shards.iter().all(|st| st.queue.is_empty()) {
            return Ok(());
        }
        if cfg.threads <= 1 {
            for s in 0..self.shards.len() {
                if let Err(message) = self.shards[s].drain_queue(&cfg) {
                    return Err(self.fail(ShardId(s as u32), message));
                }
            }
            return Ok(());
        }
        let results =
            otc_util::parallel_map_mut(&mut self.shards, cfg.threads, |_, st| st.drain_queue(&cfg));
        for (s, result) in results.into_iter().enumerate() {
            if let Err(message) = result {
                return Err(self.fail(ShardId(s as u32), message));
            }
        }
        Ok(())
    }

    /// Parses a serialized request trace (the `otc_workloads::trace` line
    /// format: `+id` / `-id`, comments and blanks ignored) and submits it
    /// as one batch.
    ///
    /// # Errors
    /// Parse errors (with line numbers), routing errors, and protocol
    /// violations.
    pub fn submit_trace(&mut self, text: &str) -> Result<(), EngineError> {
        let reqs = otc_workloads::trace::from_text(text)
            .map_err(|message| EngineError { shard: None, message })?;
        self.submit_batch(&reqs)
    }

    /// Streams a **binary** trace (`otc_workloads::trace` format) through
    /// the engine: validates the trace's declared universe against the
    /// forest, then repeatedly fills `chunk` (up to its capacity; a fresh
    /// buffer is given a 64Ki-request default) and batch-submits it — so
    /// arbitrarily long file-backed traces replay without ever being
    /// materialised, and steady-state replay rounds stay allocation-free
    /// once `chunk` and the shard queues are warm.
    ///
    /// Replaying a recorded trace is bit-identical to submitting the
    /// generating sequence in memory (pinned by
    /// `crates/sim/tests/trace_replay.rs`).
    ///
    /// # Errors
    /// Universe mismatches, trace I/O/corruption errors (with the record
    /// index), routing errors, and protocol violations.
    pub fn replay_trace<R: std::io::Read>(
        &mut self,
        reader: &mut otc_workloads::trace::TraceReader<R>,
        chunk: &mut Vec<Request>,
    ) -> Result<(), EngineError> {
        self.check_live()?;
        if let Some(f) = &self.forest {
            let universe = reader.header().universe;
            if universe > 0 && universe as usize != f.global_len() {
                return Err(EngineError {
                    shard: None,
                    message: format!(
                        "trace declares a universe of {universe} nodes but the forest has {}",
                        f.global_len()
                    ),
                });
            }
        }
        const DEFAULT_REPLAY_CHUNK: usize = 64 * 1024;
        if chunk.capacity() == 0 {
            chunk.reserve_exact(DEFAULT_REPLAY_CHUNK);
        }
        let limit = chunk.capacity();
        loop {
            chunk.clear();
            while chunk.len() < limit {
                match reader.next() {
                    Some(Ok(r)) => chunk.push(r),
                    Some(Err(e)) => {
                        return Err(EngineError {
                            shard: None,
                            message: format!("trace replay failed: {e}"),
                        });
                    }
                    None => break,
                }
            }
            if chunk.is_empty() {
                return Ok(());
            }
            self.submit_batch(chunk)?;
        }
    }

    /// Samples every shard's cumulative load counters — rounds, paid
    /// rounds, cache occupancy — as one
    /// [`CellLoad`](otc_workloads::rebalance::CellLoad) per shard, in
    /// shard order. This is the decision input of
    /// [`crate::rebalance::Rebalancer::on_boundary`]: a pure function of
    /// the requests executed so far, so live serving and trace replay
    /// sample identical values at identical stream positions. Staged
    /// requests are drained first — a boundary always samples a fully
    /// executed prefix.
    ///
    /// # Errors
    /// A poisoned engine, or violations surfaced while draining staged
    /// requests.
    pub fn cell_loads(&mut self) -> Result<Vec<otc_workloads::rebalance::CellLoad>, EngineError> {
        self.flush_pending()?;
        Ok(self
            .shards
            .iter()
            .map(|st| otc_workloads::rebalance::CellLoad {
                rounds: st.report.rounds,
                paid_rounds: st.report.paid_rounds,
                occupancy: st.driver.cache_len() as u64,
            })
            .collect())
    }

    /// The windowed telemetry collected so far: every closed window of
    /// every shard in `(shard, window)` order, plus — per shard with
    /// rounds past its last boundary — one trailing window flagged
    /// `partial`. Empty unless the engine ran with
    /// [`EngineConfig::telemetry`]; window length is the
    /// [`EngineConfig::audit_every`] cadence. Non-destructive: call it any
    /// time, including right before [`ShardedEngine::into_report`].
    #[must_use]
    pub fn timeline(&self) -> Timeline {
        let mut windows = Vec::new();
        for (s, st) in self.shards.iter().enumerate() {
            st.collect_windows(s as u32, self.cfg.telemetry, &mut windows);
        }
        crate::worker::timeline_from_windows(&self.cfg, self.shards.len() as u32, windows)
    }

    /// Runs `f` once per shard — in parallel on `cfg.threads` workers —
    /// with step-level access through a [`ShardHandle`]. Returns the
    /// per-shard results in shard order.
    ///
    /// This is the extension point for application pipelines whose event
    /// semantics need more than a flat request stream (cache probes,
    /// per-event counters): `otc_sdn::run_fib_sharded` is the canonical
    /// user.
    pub fn map_shards<R, F>(&mut self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut ShardHandle<'_, 'p>) -> R + Sync,
    {
        // Staged requests run before the closures take over, so every
        // handle observes a drained shard; a violation here poisons the
        // engine and surfaces through `into_report` like any other.
        let _ = self.flush_pending();
        let cfg = self.cfg;
        let results = otc_util::parallel_map_mut(&mut self.shards, cfg.threads, |i, st| {
            let mut handle = ShardHandle { state: st, shard: ShardId(i as u32), cfg };
            f(&mut handle)
        });
        // A violation inside a shard loop poisons the engine even if the
        // closure discarded the error: [`ShardHandle::step`] records it on
        // the shard, and the sweep below promotes the first one (by shard
        // index) to the engine-level failure.
        if self.failed.is_none() {
            for (s, st) in self.shards.iter().enumerate() {
                if let Some(message) = &st.failed {
                    self.failed = Some(EngineError {
                        shard: Some(ShardId(s as u32)),
                        message: message.clone(),
                    });
                    break;
                }
            }
        }
        results
    }

    /// Finishes every shard (closing open phases into instrumentation) and
    /// returns the per-shard reports in shard order. Staged requests are
    /// drained first, so nothing handed to [`ShardedEngine::stage`] can be
    /// silently dropped by finishing.
    ///
    /// # Errors
    /// Returns the stored error if any prior submission failed, or any
    /// violation surfaced while draining staged requests.
    pub fn into_reports(mut self) -> Result<Vec<Report>, EngineError> {
        self.flush_pending()?;
        if let Some(e) = self.failed {
            return Err(e);
        }
        let sim = self.cfg.sim();
        Ok(self
            .shards
            .into_iter()
            .map(|st| {
                let mut report = st.report;
                st.driver.finish(sim, &mut report);
                report
            })
            .collect())
    }

    /// Finishes every shard and aggregates the per-shard reports into one
    /// [`Report`] (see [`aggregate_reports`]). For a 1-shard engine this
    /// is bit-identical to the classic drivers' report.
    ///
    /// # Errors
    /// Returns the stored error if any prior submission failed.
    pub fn into_report(self) -> Result<Report, EngineError> {
        Ok(aggregate_reports(self.into_reports()?))
    }

    /// Size of the global node-id space this engine routes over.
    fn global_len(&self) -> usize {
        match &self.forest {
            Some(f) => f.global_len(),
            None => self.shards[0].tree.get().len(),
        }
    }

    /// Serializes the engine's complete state into `out` (cleared first)
    /// as an `OTCS` snapshot stamped with `log` — the trace position the
    /// state corresponds to. Staged requests are drained first so the
    /// snapshot never hides queued work. Non-consuming: the engine keeps
    /// running, and restoring the snapshot into a fresh engine then
    /// replaying the log tail reproduces this engine bit-for-bit (see
    /// [`ShardedEngine::recover`]).
    ///
    /// # Errors
    /// A poisoned engine, violations surfaced while draining staged
    /// requests, or a shard policy that does not support snapshots
    /// ([`CachePolicy::save_state`]).
    pub fn write_snapshot(
        &mut self,
        log: crate::snapshot::LogPosition,
        out: &mut Vec<u8>,
    ) -> Result<(), EngineError> {
        self.flush_pending()?;
        out.clear();
        let meta = crate::snapshot::SnapshotMeta::of(
            &self.cfg,
            self.global_len(),
            self.shards.len() as u32,
            log,
        );
        crate::snapshot::write_header(&meta, out);
        for (s, st) in self.shards.iter().enumerate() {
            crate::snapshot::write_section(s as u32, st, out)
                .map_err(|message| EngineError { shard: Some(ShardId(s as u32)), message })?;
        }
        crate::snapshot::finish_snapshot(out);
        Ok(())
    }

    /// Restores a parsed snapshot into this engine, replacing every
    /// shard's policy state, driver, report and telemetry with the
    /// snapshot's. The snapshot must be compatible (same result-affecting
    /// configuration, same forest shape, same trees, same policies) —
    /// those checks all run before anything is mutated. A failure *after*
    /// mutation begins (a policy blob that fails its own audit, or a
    /// cross-section inconsistency) poisons the engine instead of leaving
    /// a silently split state.
    ///
    /// # Errors
    /// [`SnapshotError`](crate::snapshot::SnapshotError) text for
    /// compatibility mismatches; restore failures carry the shard id.
    pub fn restore_snapshot(
        &mut self,
        snap: &crate::snapshot::EngineSnapshot,
    ) -> Result<(), EngineError> {
        self.flush_pending()?;
        snap.check_compatible(&self.cfg, self.global_len(), self.shards.len())
            .map_err(|e| EngineError { shard: None, message: e.to_string() })?;
        // Pure identity prechecks on every shard before mutating any, so
        // a refusal leaves the whole engine untouched and usable.
        for (s, st) in self.shards.iter().enumerate() {
            crate::snapshot::precheck_section(&snap.sections[s], st)
                .map_err(|message| EngineError { shard: Some(ShardId(s as u32)), message })?;
        }
        for (s, st) in self.shards.iter_mut().enumerate() {
            if let Err(message) = crate::snapshot::restore_section_into(&snap.sections[s], st) {
                // Earlier shards are already on the snapshot: the engine
                // is split across time, so the failure must poison it.
                return Err(self.fail(ShardId(s as u32), message));
            }
        }
        Ok(())
    }

    /// Replays the rest of `reader` with crash-tolerant tail handling:
    /// a clean end of input and a **torn tail** (a record cut mid-write
    /// by a crash, surfacing as `UnexpectedEof`) both end the replay
    /// normally — the engine then holds the state of the log's longest
    /// consistent prefix, reported via [`RecoverStats`](crate::snapshot::RecoverStats).
    /// In-universe corruption (`InvalidData`) is still a hard error:
    /// a decodable-but-wrong record cannot be distinguished from real
    /// input, so anything detectably wrong must stop recovery.
    ///
    /// # Errors
    /// Universe mismatches, non-EOF trace errors, routing errors, and
    /// protocol violations.
    pub fn replay_tail<R: std::io::Read>(
        &mut self,
        reader: &mut otc_workloads::trace::TraceReader<R>,
        chunk: &mut Vec<Request>,
    ) -> Result<crate::snapshot::RecoverStats, EngineError> {
        self.check_live()?;
        if let Some(f) = &self.forest {
            let universe = reader.header().universe;
            if universe > 0 && universe as usize != f.global_len() {
                return Err(EngineError {
                    shard: None,
                    message: format!(
                        "trace declares a universe of {universe} nodes but the forest has {}",
                        f.global_len()
                    ),
                });
            }
        }
        const DEFAULT_REPLAY_CHUNK: usize = 64 * 1024;
        if chunk.capacity() == 0 {
            chunk.reserve_exact(DEFAULT_REPLAY_CHUNK);
        }
        let limit = chunk.capacity();
        let mut stats = crate::snapshot::RecoverStats::default();
        loop {
            chunk.clear();
            while chunk.len() < limit {
                match reader.next() {
                    Some(Ok(r)) => chunk.push(r),
                    Some(Err(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                        stats.torn_tail = true;
                        break;
                    }
                    Some(Err(e)) => {
                        return Err(EngineError {
                            shard: None,
                            message: format!("trace replay failed: {e}"),
                        });
                    }
                    None => break,
                }
            }
            if chunk.is_empty() {
                return Ok(stats);
            }
            stats.replayed += chunk.len() as u64;
            self.submit_batch(chunk)?;
            if stats.torn_tail {
                return Ok(stats);
            }
        }
    }

    /// Crash recovery: restores `snap`, seeks `reader` to the snapshot's
    /// [`LogPosition`](crate::snapshot::LogPosition), and replays the log
    /// tail with [`ShardedEngine::replay_tail`]'s torn-tail tolerance.
    /// The result is bit-identical to an engine that processed the whole
    /// log uninterrupted (determinism invariant #6). The caller must
    /// ensure the log actually extends to the snapshot's offset (a log
    /// shorter than its snapshot means the snapshot is from a different
    /// or newer log — `otc-serve` checks this before picking one).
    ///
    /// # Errors
    /// Restore failures, seek I/O errors, and everything
    /// [`ShardedEngine::replay_tail`] can return.
    pub fn recover<R: std::io::Read + std::io::Seek>(
        &mut self,
        snap: &crate::snapshot::EngineSnapshot,
        reader: &mut otc_workloads::trace::TraceReader<R>,
        chunk: &mut Vec<Request>,
    ) -> Result<crate::snapshot::RecoverStats, EngineError> {
        self.restore_snapshot(snap)?;
        reader.seek_to(snap.meta.log.offset, snap.meta.log.records).map_err(|e| EngineError {
            shard: None,
            message: format!("cannot seek the trace to the snapshot's log position: {e}"),
        })?;
        self.replay_tail(reader, chunk)
    }
}

impl ShardedEngine<'static> {
    /// Takes the engine apart for serving: one cheap cloneable
    /// [`crate::worker::ShardRouter`] (the routing view, shared by
    /// ingress threads) plus one self-contained, `Send`
    /// [`crate::worker::ShardWorker`] per shard (tree, policy, verified
    /// driver, report and telemetry state — ready to be pinned to a
    /// persistent worker thread). Anything still staged is drained first,
    /// so no request is lost at the hand-over. Only owned engines detach
    /// (the borrowed single-shard adapters are tied to their caller's
    /// stack); see `crates/sim/src/worker.rs` for the contract the
    /// workers keep.
    ///
    /// # Errors
    /// Returns the stored error if the engine is poisoned, or any
    /// violation surfaced while draining staged requests.
    pub fn into_workers(
        mut self,
    ) -> Result<(crate::worker::ShardRouter, Vec<crate::worker::ShardWorker>), EngineError> {
        self.flush_pending()?;
        if let Some(e) = self.failed {
            return Err(e);
        }
        let shard_sizes: Vec<u32> =
            self.shards.iter().map(|st| st.tree.get().len() as u32).collect();
        let global_len = match &self.forest {
            Some(f) => f.global_len(),
            None => self.shards[0].tree.get().len(),
        };
        let router = crate::worker::ShardRouter::new(self.forest, shard_sizes, global_len);
        let cfg = self.cfg;
        let workers = self
            .shards
            .into_iter()
            .enumerate()
            .map(|(s, st)| crate::worker::ShardWorker::new(st, ShardId(s as u32), cfg))
            .collect();
        Ok((router, workers))
    }
}

/// Merges per-shard reports into one: costs, rounds and event counters
/// sum; `peak_cache` sums (the forest's aggregate cache footprint); field
/// and period statistics sum component-wise (present only when every shard
/// was instrumented); phase records concatenate in shard order. The name
/// is the first shard's policy name. Merging a single report is the
/// identity.
///
/// # Panics
/// Panics if `reports` is empty.
#[must_use]
pub fn aggregate_reports(reports: Vec<Report>) -> Report {
    assert!(!reports.is_empty(), "nothing to aggregate");
    let mut iter = reports.into_iter();
    let mut total = iter.next().expect("non-empty");
    for r in iter {
        total.cost.add(r.cost);
        total.rounds += r.rounds;
        total.paid_rounds += r.paid_rounds;
        total.fetch_events += r.fetch_events;
        total.evict_events += r.evict_events;
        total.flush_events += r.flush_events;
        total.nodes_fetched += r.nodes_fetched;
        total.nodes_evicted += r.nodes_evicted;
        total.nodes_flushed += r.nodes_flushed;
        total.peak_cache += r.peak_cache;
        total.fields = match (total.fields.take(), r.fields) {
            (Some(mut a), Some(b)) => {
                a.positive_fields += b.positive_fields;
                a.negative_fields += b.negative_fields;
                a.total_size += b.total_size;
                a.total_requests += b.total_requests;
                a.saturation_violations += b.saturation_violations;
                a.field_sizes.extend(b.field_sizes);
                a.open_field_requests += b.open_field_requests;
                Some(a)
            }
            _ => None,
        };
        total.periods = match (total.periods.take(), r.periods) {
            (Some(mut a), Some(b)) => {
                a.pout += b.pout;
                a.pin += b.pin;
                a.full_out += b.full_out;
                a.full_in += b.full_in;
                a.per_phase_balance.extend(b.per_phase_balance);
                Some(a)
            }
            _ => None,
        };
        total.phases.extend(r.phases);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use otc_core::tc::{TcConfig, TcFast};
    use otc_core::tree::NodeId;
    use otc_core::Request;
    use otc_util::SplitMix64;

    fn tc_factory(
        alpha: u64,
        capacity: usize,
    ) -> impl Fn(Arc<Tree>, ShardId) -> Box<dyn CachePolicy> {
        move |tree, _| Box::new(TcFast::new(tree, TcConfig::new(alpha, capacity)))
    }

    fn mixed_requests(n: usize, len: usize, seed: u64) -> Vec<Request> {
        let mut rng = SplitMix64::new(seed);
        (0..len)
            .map(|_| {
                let v = NodeId(rng.index(n) as u32);
                if rng.chance(0.4) {
                    Request::neg(v)
                } else {
                    Request::pos(v)
                }
            })
            .collect()
    }

    #[test]
    fn single_shard_engine_matches_run_policy() {
        let tree = Arc::new(Tree::kary(2, 4));
        let reqs = mixed_requests(tree.len(), 4000, 7);
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(3, 6));
        let base = crate::run_policy(&tree, &mut tc, &reqs, SimConfig::new(3)).expect("valid");

        let factory = tc_factory(3, 6);
        let mut engine =
            ShardedEngine::new(Forest::single(Arc::clone(&tree)), &factory, EngineConfig::new(3));
        engine.submit_batch(&reqs).expect("valid");
        let report = engine.into_report().expect("valid");
        assert_eq!(report, base, "1-shard engine must be bit-identical to run_policy");
    }

    #[test]
    fn batch_order_is_preserved_per_shard_regardless_of_threads() {
        let tree = Tree::star(16);
        let reqs = mixed_requests(tree.len(), 6000, 11);
        let mut reports = Vec::new();
        for threads in [1usize, 4] {
            let factory = tc_factory(2, 3);
            let mut engine = ShardedEngine::new(
                Forest::partition(&tree, 4),
                &factory,
                EngineConfig::new(2).threads(threads),
            );
            for chunk in reqs.chunks(512) {
                engine.submit_batch(chunk).expect("valid");
            }
            reports.push(engine.into_report().expect("valid"));
        }
        assert_eq!(reports[0], reports[1], "thread count must never change results");
    }

    #[test]
    fn multi_shard_matches_sum_of_independent_runs() {
        let trees: Vec<Arc<Tree>> =
            vec![Arc::new(Tree::kary(2, 3)), Arc::new(Tree::path(5)), Arc::new(Tree::star(6))];
        let forest = Forest::from_trees(trees.clone());
        let reqs = mixed_requests(forest.global_len(), 5000, 13);

        let factory = tc_factory(2, 4);
        let mut engine = ShardedEngine::new(forest.clone(), &factory, EngineConfig::new(2));
        engine.submit_batch(&reqs).expect("valid");
        let per_shard = engine.into_reports().expect("valid");

        for (s, tree) in trees.iter().enumerate() {
            let local: Vec<Request> = reqs
                .iter()
                .filter_map(|&r| {
                    let (sid, lr) = forest.route_request(r);
                    (sid.index() == s).then_some(lr)
                })
                .collect();
            let mut tc = TcFast::new(Arc::clone(tree), TcConfig::new(2, 4));
            let solo = crate::run_policy(tree, &mut tc, &local, SimConfig::new(2)).expect("valid");
            assert_eq!(per_shard[s], solo, "shard {s} must equal its independent run");
        }
    }

    #[test]
    fn submit_single_matches_batch() {
        let tree = Tree::star(8);
        let reqs = mixed_requests(tree.len(), 1000, 17);
        let factory = tc_factory(2, 2);
        let mut a = ShardedEngine::new(Forest::partition(&tree, 3), &factory, EngineConfig::new(2));
        for &r in &reqs {
            a.submit(r).expect("valid");
        }
        let mut b = ShardedEngine::new(Forest::partition(&tree, 3), &factory, EngineConfig::new(2));
        b.submit_batch(&reqs).expect("valid");
        assert_eq!(a.into_report().expect("valid"), b.into_report().expect("valid"));
    }

    #[test]
    fn out_of_range_requests_are_rejected() {
        let tree = Tree::star(3);
        let factory = tc_factory(2, 2);
        let mut engine =
            ShardedEngine::new(Forest::partition(&tree, 2), &factory, EngineConfig::new(2));
        let err = engine.submit(Request::pos(NodeId(99))).unwrap_err();
        assert!(err.message.contains("99"), "unexpected error: {err}");
    }

    #[test]
    fn trace_submission_round_trips() {
        let tree = Arc::new(Tree::star(4));
        let reqs = vec![
            Request::pos(NodeId(1)),
            Request::pos(NodeId(1)),
            Request::neg(NodeId(2)),
            Request::pos(NodeId(3)),
        ];
        let text = otc_workloads::trace::to_text(&reqs);

        let factory = tc_factory(2, 2);
        let mut via_trace =
            ShardedEngine::new(Forest::single(Arc::clone(&tree)), &factory, EngineConfig::new(2));
        via_trace.submit_trace(&text).expect("valid");
        let mut via_batch =
            ShardedEngine::new(Forest::single(Arc::clone(&tree)), &factory, EngineConfig::new(2));
        via_batch.submit_batch(&reqs).expect("valid");
        assert_eq!(
            via_trace.into_report().expect("valid"),
            via_batch.into_report().expect("valid")
        );
    }

    #[test]
    fn malformed_trace_is_reported() {
        let tree = Arc::new(Tree::star(2));
        let factory = tc_factory(2, 2);
        let mut engine = ShardedEngine::new(Forest::single(tree), &factory, EngineConfig::new(2));
        let err = engine.submit_trace("+1\nnot-a-request\n").unwrap_err();
        assert!(err.message.contains("line 2"), "unexpected error: {err}");
    }

    #[test]
    fn violation_poisons_the_engine() {
        struct Liar {
            cache: CacheSet,
        }
        impl CachePolicy for Liar {
            fn name(&self) -> &'static str {
                "liar"
            }
            fn capacity(&self) -> usize {
                4
            }
            fn cache(&self) -> &CacheSet {
                &self.cache
            }
            fn reset(&mut self) {}
            fn step(&mut self, _req: Request, out: &mut otc_core::policy::ActionBuffer) {
                out.clear();
            }
        }
        let tree = Tree::star(2);
        let factory = |tree: Arc<Tree>, _| {
            Box::new(Liar { cache: CacheSet::empty(tree.len()) }) as Box<dyn CachePolicy>
        };
        let mut engine =
            ShardedEngine::new(Forest::single(Arc::new(tree)), &factory, EngineConfig::new(2));
        let err = engine.submit(Request::pos(NodeId(1))).unwrap_err();
        assert!(err.message.contains("paid"), "unexpected error: {err}");
        assert_eq!(err.shard, Some(ShardId(0)));
        // Poisoned: everything keeps returning the stored violation.
        assert_eq!(engine.submit(Request::pos(NodeId(1))).unwrap_err(), err);
        assert_eq!(engine.into_report().unwrap_err(), err);
    }

    #[test]
    fn one_shard_partition_with_renumbered_nodes_routes_batches() {
        // Tree whose preorder differs from its id order: parents
        // [None, 0, 0, 1] has preorder 0,1,3,2, so Forest::partition
        // renumbers global 2 -> local 3 and global 3 -> local 2 even with
        // a single shard. Batch submission must route exactly like
        // per-request submission (regression: the 1-shard fast path used
        // to skip routing).
        let tree = Tree::from_parents(&[None, Some(0), Some(0), Some(1)]);
        let forest = Forest::partition(&tree, 1);
        assert!(!forest.is_identity_routing());
        let reqs = mixed_requests(tree.len(), 600, 23);
        let factory = tc_factory(2, 2);
        let mut batched = ShardedEngine::new(forest.clone(), &factory, EngineConfig::new(2));
        batched.submit_batch(&reqs).expect("valid");
        let mut stepped = ShardedEngine::new(forest.clone(), &factory, EngineConfig::new(2));
        for &r in &reqs {
            stepped.submit(r).expect("valid");
        }
        let batched = batched.into_report().expect("valid");
        assert_eq!(batched, stepped.into_report().expect("valid"));
        // And both equal an independent run on the shard tree with
        // pre-routed requests.
        let local: Vec<Request> = reqs.iter().map(|&r| forest.route_request(r).1).collect();
        let mut tc = TcFast::new(Arc::clone(forest.tree(ShardId(0))), TcConfig::new(2, 2));
        let solo = crate::run_policy(forest.tree(ShardId(0)), &mut tc, &local, SimConfig::new(2))
            .expect("valid");
        assert_eq!(batched, solo);
    }

    #[test]
    fn routing_error_rejects_the_batch_atomically() {
        // A bad request mid-batch must leave nothing staged: the corrected
        // retry equals a fresh engine's run (regression: the routed prefix
        // used to survive in the shard queues and replay later).
        let trees = vec![Arc::new(Tree::star(3)), Arc::new(Tree::star(3))];
        let forest = Forest::from_trees(trees);
        let factory = tc_factory(2, 2);
        let good = [Request::pos(NodeId(1)), Request::pos(NodeId(5)), Request::pos(NodeId(1))];

        let mut engine = ShardedEngine::new(forest.clone(), &factory, EngineConfig::new(2));
        let err =
            engine.submit_batch(&[Request::pos(NodeId(1)), Request::pos(NodeId(99))]).unwrap_err();
        assert!(err.message.contains("99"), "unexpected error: {err}");
        // Rejected batches poison nothing and leave nothing behind.
        engine.submit_batch(&good).expect("valid");

        let mut fresh = ShardedEngine::new(forest, &factory, EngineConfig::new(2));
        fresh.submit_batch(&good).expect("valid");
        assert_eq!(engine.into_report().expect("valid"), fresh.into_report().expect("valid"));
    }

    #[test]
    fn map_shards_violation_poisons_even_if_discarded() {
        struct Liar {
            cache: CacheSet,
        }
        impl CachePolicy for Liar {
            fn name(&self) -> &'static str {
                "liar"
            }
            fn capacity(&self) -> usize {
                4
            }
            fn cache(&self) -> &CacheSet {
                &self.cache
            }
            fn reset(&mut self) {}
            fn step(&mut self, _req: Request, out: &mut otc_core::policy::ActionBuffer) {
                out.clear();
            }
        }
        let factory = |tree: Arc<Tree>, _| {
            Box::new(Liar { cache: CacheSet::empty(tree.len()) }) as Box<dyn CachePolicy>
        };
        let mut engine = ShardedEngine::new(
            Forest::single(Arc::new(Tree::star(2))),
            &factory,
            EngineConfig::new(2),
        );
        // The closure drives the shard into a violation and throws the
        // error away — the engine must still refuse to report.
        let _ = engine.map_shards(|handle| handle.step(Request::pos(NodeId(1))).is_ok());
        let err = engine.into_report().unwrap_err();
        assert!(err.message.contains("paid"), "unexpected error: {err}");
        assert_eq!(err.shard, Some(ShardId(0)));
    }

    #[test]
    fn stage_then_flush_pending_matches_submit_batch() {
        let tree = Tree::star(12);
        let reqs = mixed_requests(tree.len(), 3000, 29);
        let factory = tc_factory(2, 3);

        let mut batched = ShardedEngine::new(
            Forest::partition(&tree, 4),
            &factory,
            EngineConfig::new(2).threads(2),
        );
        batched.submit_batch(&reqs).expect("valid");

        let mut staged = ShardedEngine::new(
            Forest::partition(&tree, 4),
            &factory,
            EngineConfig::new(2).threads(2),
        );
        // Stage in dribs and drabs with interleaved flushes — any cut of
        // the same global order must yield the same result.
        for (i, &r) in reqs.iter().enumerate() {
            staged.stage(r).expect("in range");
            if i % 97 == 0 {
                staged.flush_pending().expect("valid");
            }
        }
        staged.flush_pending().expect("valid");
        staged.flush_pending().expect("flushing nothing is a no-op");
        assert_eq!(
            batched.into_report().expect("valid"),
            staged.into_report().expect("valid"),
            "stage + flush_pending ≡ submit_batch"
        );
    }

    #[test]
    fn staged_requests_are_never_silently_dropped() {
        // Every terminal / executing API must drain staged requests
        // first: finishing, single submits and shard loops all observe
        // them (regression: into_report used to skip the queues).
        let tree = Tree::star(6);
        let factory = tc_factory(2, 2);

        let mut staged =
            ShardedEngine::new(Forest::partition(&tree, 2), &factory, EngineConfig::new(2));
        staged.stage(Request::pos(NodeId(1))).expect("in range");
        staged.stage(Request::pos(NodeId(1))).expect("in range");
        let report = staged.into_report().expect("valid");
        assert_eq!(report.rounds, 2, "into_report must run what was staged");

        let mut mixed =
            ShardedEngine::new(Forest::partition(&tree, 2), &factory, EngineConfig::new(2));
        mixed.stage(Request::pos(NodeId(2))).expect("in range");
        mixed.submit(Request::pos(NodeId(2))).expect("valid");
        let mut ordered =
            ShardedEngine::new(Forest::partition(&tree, 2), &factory, EngineConfig::new(2));
        ordered.submit(Request::pos(NodeId(2))).expect("valid");
        ordered.submit(Request::pos(NodeId(2))).expect("valid");
        assert_eq!(
            mixed.into_report().expect("valid"),
            ordered.into_report().expect("valid"),
            "submit flushes staged requests first, preserving global order"
        );
    }

    #[test]
    fn rejected_batch_preserves_staged_requests() {
        // A routing error mid-batch must drop that batch only: requests
        // staged before it survive and run on the next flush.
        let tree = Tree::star(6);
        let factory = tc_factory(2, 2);
        let good = [Request::pos(NodeId(1)), Request::pos(NodeId(1))];

        let mut engine =
            ShardedEngine::new(Forest::partition(&tree, 2), &factory, EngineConfig::new(2));
        engine.stage(Request::pos(NodeId(2))).expect("in range");
        let err =
            engine.submit_batch(&[Request::pos(NodeId(3)), Request::pos(NodeId(99))]).unwrap_err();
        assert!(err.message.contains("99"), "unexpected error: {err}");
        engine.submit_batch(&good).expect("valid");

        let mut fresh =
            ShardedEngine::new(Forest::partition(&tree, 2), &factory, EngineConfig::new(2));
        fresh.submit(Request::pos(NodeId(2))).expect("valid");
        fresh.submit_batch(&good).expect("valid");
        assert_eq!(engine.into_report().expect("valid"), fresh.into_report().expect("valid"));
    }

    #[test]
    fn aggregate_of_one_is_identity() {
        let mut r = Report { name: "x".to_string(), ..Report::default() };
        r.cost.service = 5;
        r.peak_cache = 3;
        assert_eq!(aggregate_reports(vec![r.clone()]), r);
    }
}
