//! Simulation reports: costs plus the analysis-level statistics
//! (fields, periods, phases) that experiments E3/E4/E9 consume.

use otc_core::request::Cost;

/// Statistics over the field partition of the event space (Section 5.1).
///
/// A *field* is the set of slots `(v, r)` with `v` in an applied changeset
/// `X_t` and `r` in `(last_v(t), t]` — the requests that eventually trigger
/// the application of `X_t`. Observation 5.2 states every field carries
/// exactly `size(F)·α` paying requests; the simulator verifies this per
/// field for TC.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FieldStats {
    /// Number of positive (fetch) fields closed.
    pub positive_fields: u64,
    /// Number of negative (evict) fields closed.
    pub negative_fields: u64,
    /// `Σ size(F)` over all closed fields.
    pub total_size: u64,
    /// `Σ req(F)` (paying requests inside closed fields).
    pub total_requests: u64,
    /// Fields violating `req(F) = size(F)·α` (must stay 0 for TC).
    pub saturation_violations: u64,
    /// Sizes of individual fields, in closing order.
    pub field_sizes: Vec<u64>,
    /// Paying requests left in the open field `F∞` at the end of input.
    pub open_field_requests: u64,
}

/// Statistics over per-node in/out periods (Section 5.2.5, Figure 3).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PeriodStats {
    /// Closed out-periods (ended by a fetch) across all phases.
    pub pout: u64,
    /// Closed in-periods (ended by an eviction) across all phases.
    pub pin: u64,
    /// Closed out-periods with at least α/2 paying requests ("full").
    pub full_out: u64,
    /// Closed in-periods with at least α/2 paying requests.
    pub full_in: u64,
    /// Per finished phase: `pout − pin` (should equal `kP`, the cache size
    /// at the phase end — Lemma 5.11's bookkeeping).
    pub per_phase_balance: Vec<(u64, u64, usize)>,
}

/// Per-phase anatomy (experiment E9).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Rounds spanned by the phase.
    pub rounds: u64,
    /// Cache size at the phase's end (just before the flush, or at input
    /// end for the unfinished phase). A lower bound on the paper's `kP`
    /// (which also counts the aborted artificial fetch).
    pub k_p: usize,
    /// `Σ size(F)` over fields closed inside this phase.
    pub fields_size: u64,
    /// Paying requests left in the phase's open field `F∞` when the phase
    /// closed (pending request mass never absorbed by a changeset).
    pub open_requests: u64,
    /// Cost incurred during the phase.
    pub cost: Cost,
    /// Whether the phase ended with a flush (finished) or at input end.
    pub finished: bool,
}

/// Full simulation outcome for one policy on one request sequence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Policy name.
    pub name: String,
    /// Total cost (service + α·nodes-touched).
    pub cost: Cost,
    /// Number of rounds simulated.
    pub rounds: u64,
    /// Rounds on which the policy paid the service cost.
    pub paid_rounds: u64,
    /// Fetch actions applied.
    pub fetch_events: u64,
    /// Evict actions applied (flushes not included).
    pub evict_events: u64,
    /// Flush (phase restart) events.
    pub flush_events: u64,
    /// Total nodes fetched.
    pub nodes_fetched: u64,
    /// Total nodes evicted (including flushes).
    pub nodes_evicted: u64,
    /// Nodes evicted by flushes alone (a subset of [`Report::nodes_evicted`];
    /// the windowed telemetry uses it to break reorganisation cost down by
    /// fetch / evict / flush).
    pub nodes_flushed: u64,
    /// Largest cache population observed after any round.
    pub peak_cache: usize,
    /// Field statistics (when tracking was enabled).
    pub fields: Option<FieldStats>,
    /// Period statistics (when tracking was enabled).
    pub periods: Option<PeriodStats>,
    /// Phase anatomy (when tracking was enabled).
    pub phases: Vec<PhaseStats>,
}

impl Report {
    /// Total monetary cost.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.cost.total()
    }
}
