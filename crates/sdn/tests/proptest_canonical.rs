//! Property test: Appendix B's factor-2 canonicalization bound holds on
//! arbitrary chunked inputs, for both TC (which never acts mid-chunk) and
//! the invalidate-on-update policy (which always does).

use std::sync::Arc;

use otc_baselines::InvalidateOnUpdate;
use otc_core::policy::CachePolicy;
use otc_core::tc::{TcConfig, TcFast};
use otc_core::tree::{NodeId, Tree};
use otc_core::{Request, Sign};
use otc_sdn::{canonicalize, evaluate_solution, is_canonical, record_run};
use proptest::prelude::*;

fn tree_from_seeds(seeds: &[u64]) -> Tree {
    let mut parents: Vec<Option<usize>> = vec![None];
    for (i, &s) in seeds.iter().enumerate() {
        parents.push(Some((s % (i as u64 + 1)) as usize));
    }
    Tree::from_parents(&parents)
}

/// Builds a chunked stream: events are either one positive request or a
/// full α-chunk of negatives to one node.
fn chunked(
    tree: &Tree,
    events: &[(u64, bool)],
    alpha: u64,
) -> (Vec<Request>, Vec<std::ops::Range<usize>>) {
    let mut reqs = Vec::new();
    let mut chunks = Vec::new();
    for &(s, is_update) in events {
        let node = NodeId((s % tree.len() as u64) as u32);
        if is_update {
            let start = reqs.len();
            for _ in 0..alpha {
                reqs.push(Request { node, sign: Sign::Negative });
            }
            chunks.push(start..reqs.len());
        } else {
            reqs.push(Request { node, sign: Sign::Positive });
        }
    }
    (reqs, chunks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn canonicalization_factor_two(
        tree_seeds in prop::collection::vec(any::<u64>(), 0..16),
        events in prop::collection::vec((any::<u64>(), any::<bool>()), 1..400),
        alpha in 1u64..6,
        capacity in 1usize..10,
    ) {
        let tree = Arc::new(tree_from_seeds(&tree_seeds));
        let (reqs, chunks) = chunked(&tree, &events, alpha);

        let policies: Vec<Box<dyn CachePolicy>> = vec![
            Box::new(TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, capacity))),
            Box::new(InvalidateOnUpdate::new(Arc::clone(&tree), capacity)),
        ];
        for mut policy in policies {
            let name = policy.name();
            let original = record_run(policy.as_mut(), &reqs);
            let canonical = canonicalize(&original, &chunks);
            prop_assert!(is_canonical(&canonical, &chunks), "{} not canonical", name);
            let c0 = evaluate_solution(&tree, &reqs, &original, alpha, capacity)
                .map_err(|e| TestCaseError::fail(format!("{name} original invalid: {e}")))?;
            let c1 = evaluate_solution(&tree, &reqs, &canonical, alpha, capacity)
                .map_err(|e| TestCaseError::fail(format!("{name} canonical invalid: {e}")))?;
            prop_assert!(
                c1.total() <= 2 * c0.total(),
                "{}: canonical {} > 2 × original {}",
                name, c1.total(), c0.total()
            );
        }
    }

    /// TC structural fact: on α-aligned chunk inputs it never reorganises
    /// strictly inside a chunk, so canonicalization is the identity on it.
    #[test]
    fn tc_is_already_canonical(
        tree_seeds in prop::collection::vec(any::<u64>(), 0..16),
        events in prop::collection::vec((any::<u64>(), any::<bool>()), 1..300),
        alpha in 1u64..6,
        capacity in 1usize..10,
    ) {
        let tree = Arc::new(tree_from_seeds(&tree_seeds));
        let (reqs, chunks) = chunked(&tree, &events, alpha);
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, capacity));
        let original = record_run(&mut tc, &reqs);
        prop_assert!(
            is_canonical(&original, &chunks),
            "TC acted strictly inside an update chunk"
        );
    }
}
