//! Appendix B: canonical solutions and the factor-2 transformation.
//!
//! A rule update maps to a chunk of α negative requests. A solution is
//! *canonical* when it never modifies the cache strictly inside a chunk —
//! canonical solutions correspond 1:1 (and cost-for-cost) to solutions of
//! the "forwarding-table minimisation" problem where an update of a cached
//! rule costs α outright. Appendix B shows any solution can be made
//! canonical by postponing in-chunk modifications to the chunk's end,
//! losing at most a factor 2. This module implements:
//!
//! * a recorded-solution representation (actions per round);
//! * an independent solution evaluator (validity + exact cost);
//! * the canonicalization transform;
//! * and the machinery E8 uses to verify `canonical ≤ 2 × original`.

use std::ops::Range;

use otc_core::cache::CacheSet;
use otc_core::changeset::{is_valid_negative, is_valid_positive};
use otc_core::policy::{request_pays, Action, CachePolicy};
use otc_core::request::{Cost, Request};
use otc_core::tree::Tree;

/// A fully recorded solution: the actions taken after each round.
#[derive(Debug, Clone, Default)]
pub struct Solution {
    /// `actions[t]` are applied after serving round `t`.
    pub actions: Vec<Vec<Action>>,
}

/// Runs a policy over the requests, recording its actions per round.
#[must_use]
pub fn record_run(policy: &mut dyn CachePolicy, requests: &[Request]) -> Solution {
    let actions = requests.iter().map(|&r| policy.step_owned(r).actions).collect();
    Solution { actions }
}

/// Replays a solution from an empty cache, verifying validity and
/// computing its exact cost. Flushes are treated as evict-everything.
///
/// # Errors
/// Returns a description of the first invalid action.
pub fn evaluate_solution(
    tree: &Tree,
    requests: &[Request],
    solution: &Solution,
    alpha: u64,
    capacity: usize,
) -> Result<Cost, String> {
    if solution.actions.len() != requests.len() {
        return Err(format!(
            "solution covers {} rounds, input has {}",
            solution.actions.len(),
            requests.len()
        ));
    }
    let mut cache = CacheSet::empty(tree.len());
    let mut cost = Cost::zero();
    for (t, (&req, round_actions)) in requests.iter().zip(&solution.actions).enumerate() {
        if request_pays(&cache, req) {
            cost.service += 1;
        }
        for action in round_actions {
            match action {
                Action::Fetch(set) => {
                    if !is_valid_positive(tree, &cache, set) {
                        return Err(format!("round {t}: invalid fetch {set:?}"));
                    }
                    cache.fetch(set);
                    cost.reorg += alpha * set.len() as u64;
                }
                Action::Evict(set) => {
                    if !is_valid_negative(tree, &cache, set) {
                        return Err(format!("round {t}: invalid eviction {set:?}"));
                    }
                    cache.evict(set);
                    cost.reorg += alpha * set.len() as u64;
                }
                Action::Flush(_) => {
                    cost.reorg += alpha * cache.len() as u64;
                    cache.clear();
                }
            }
        }
        if cache.len() > capacity {
            return Err(format!("round {t}: capacity exceeded ({} > {capacity})", cache.len()));
        }
    }
    Ok(cost)
}

/// Postpones every action that fires strictly inside an update chunk to
/// the chunk's final round, preserving order (Appendix B's transform).
/// Rounds outside chunks are untouched.
#[must_use]
pub fn canonicalize(solution: &Solution, chunks: &[Range<usize>]) -> Solution {
    let mut actions = solution.actions.clone();
    for chunk in chunks {
        if chunk.len() <= 1 {
            continue;
        }
        let last = chunk.end - 1;
        let mut postponed: Vec<Action> = Vec::new();
        for slot in &mut actions[chunk.start..last] {
            postponed.append(slot);
        }
        if !postponed.is_empty() {
            postponed.append(&mut actions[last]);
            actions[last] = postponed;
        }
    }
    Solution { actions }
}

/// Whether a solution is canonical w.r.t. the given chunks (no action
/// strictly inside a chunk).
#[must_use]
pub fn is_canonical(solution: &Solution, chunks: &[Range<usize>]) -> bool {
    chunks.iter().all(|chunk| (chunk.start..chunk.end - 1).all(|t| solution.actions[t].is_empty()))
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use otc_core::tc::{TcConfig, TcFast};
    use otc_core::tree::{NodeId, Tree};
    use otc_core::Sign;
    use otc_util::SplitMix64;

    /// Builds a chunked mixed request stream directly.
    fn chunked_stream(
        tree: &Tree,
        events: usize,
        alpha: u64,
        update_p: f64,
        seed: u64,
    ) -> (Vec<Request>, Vec<Range<usize>>) {
        let mut rng = SplitMix64::new(seed);
        let mut reqs = Vec::new();
        let mut chunks = Vec::new();
        for _ in 0..events {
            let node = NodeId(rng.index(tree.len()) as u32);
            if rng.chance(update_p) {
                let start = reqs.len();
                for _ in 0..alpha {
                    reqs.push(Request::neg(node));
                }
                chunks.push(start..reqs.len());
            } else {
                reqs.push(Request::pos(node));
            }
        }
        (reqs, chunks)
    }

    #[test]
    fn record_and_evaluate_match_live_run() {
        let tree = Arc::new(Tree::kary(2, 4));
        let alpha = 3;
        let (reqs, _) = chunked_stream(&tree, 3000, alpha, 0.15, 1);
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, 6));
        let solution = record_run(&mut tc, &reqs);
        let cost = evaluate_solution(&tree, &reqs, &solution, alpha, 6).expect("valid");
        // Cross-check against the live simulator.
        let mut tc2 = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, 6));
        let report = otc_sim::run_policy(&tree, &mut tc2, &reqs, otc_sim::SimConfig::new(alpha))
            .expect("valid");
        assert_eq!(cost.total(), report.cost.total());
        assert_eq!(cost.service, report.cost.service);
    }

    #[test]
    fn canonicalization_clears_chunk_interiors() {
        let tree = Arc::new(Tree::kary(2, 3));
        let alpha = 4;
        let (reqs, chunks) = chunked_stream(&tree, 2000, alpha, 0.3, 2);
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, 4));
        let original = record_run(&mut tc, &reqs);
        let canonical = canonicalize(&original, &chunks);
        assert!(is_canonical(&canonical, &chunks));
        // Action multiset preserved.
        let count = |s: &Solution| s.actions.iter().map(Vec::len).sum::<usize>();
        assert_eq!(count(&original), count(&canonical));
    }

    #[test]
    fn canonical_cost_within_factor_two() {
        // Appendix B: the canonical solution costs at most 2× the original.
        let tree = Arc::new(Tree::kary(2, 4));
        for (alpha, update_p, seed) in [(2u64, 0.3, 3u64), (4, 0.5, 4), (6, 0.2, 5)] {
            let (reqs, chunks) = chunked_stream(&tree, 4000, alpha, update_p, seed);
            let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, 6));
            let original = record_run(&mut tc, &reqs);
            let canonical = canonicalize(&original, &chunks);
            let c0 = evaluate_solution(&tree, &reqs, &original, alpha, 6).expect("orig valid");
            let c1 =
                evaluate_solution(&tree, &reqs, &canonical, alpha, 6).expect("canonical valid");
            assert!(
                c1.total() <= 2 * c0.total(),
                "α={alpha}, p={update_p}: canonical {} vs original {}",
                c1.total(),
                c0.total()
            );
        }
    }

    #[test]
    fn postponement_preserves_validity_even_when_it_costs() {
        // Hand-built: evicting a node mid-chunk avoids paying the rest of
        // the chunk; postponing makes those rounds paid but stays valid.
        let tree = Arc::new(Tree::star(1));
        let leaf = NodeId(1);
        let alpha = 4u64;
        // Fetch the leaf via an oracle solution, then a 4-negative chunk.
        let reqs: Vec<Request> = vec![
            Request::pos(leaf),
            Request { node: leaf, sign: Sign::Negative },
            Request { node: leaf, sign: Sign::Negative },
            Request { node: leaf, sign: Sign::Negative },
            Request { node: leaf, sign: Sign::Negative },
        ];
        let chunks: Vec<std::ops::Range<usize>> = std::iter::once(1..5).collect();
        // Original solution: fetch after round 0, evict after round 1
        // (inside the chunk!).
        let original = Solution {
            actions: vec![
                vec![Action::Fetch(vec![leaf])],
                vec![Action::Evict(vec![leaf])],
                vec![],
                vec![],
                vec![],
            ],
        };
        let c0 = evaluate_solution(&tree, &reqs, &original, alpha, 2).expect("valid");
        // service: round 0 pays (miss), round 1 pays (cached), rounds 2–4
        // free. reorg: fetch + evict = 2α.
        assert_eq!(c0.service, 2);
        assert_eq!(c0.reorg, 8);
        let canonical = canonicalize(&original, &chunks);
        assert!(is_canonical(&canonical, &chunks));
        let c1 = evaluate_solution(&tree, &reqs, &canonical, alpha, 2).expect("still valid");
        // Now all four negatives pay, eviction moved to the chunk end.
        assert_eq!(c1.service, 5);
        assert_eq!(c1.reorg, 8);
        assert!(c1.total() <= 2 * c0.total());
    }

    #[test]
    fn evaluator_rejects_garbage() {
        let tree = Arc::new(Tree::star(2));
        let reqs = vec![Request::pos(NodeId(0))];
        let bad = Solution { actions: vec![vec![Action::Fetch(vec![NodeId(0)])]] };
        // Fetching the root without its leaves is invalid.
        assert!(evaluate_solution(&tree, &reqs, &bad, 2, 4).is_err());
        // Arity mismatch.
        let short = Solution { actions: vec![] };
        assert!(evaluate_solution(&tree, &reqs, &short, 2, 4).is_err());
        // Capacity violation.
        let all: Vec<NodeId> = tree.nodes().collect();
        let big = Solution { actions: vec![vec![Action::Fetch(all)]] };
        assert!(evaluate_solution(&tree, &reqs, &big, 2, 2).is_err());
    }
}
