//! The router/controller FIB-caching system (paper, Section 2, Figure 1).
//!
//! A router holds a capacity-bounded cache of forwarding rules (its TCAM);
//! an SDN controller holds the full table and runs the caching algorithm.
//! Packets whose longest-matching-prefix rule is cached are forwarded at
//! cost 0; others fall through the artificial default rule to the
//! controller at cost 1 — a positive request. A rule update is free at the
//! controller but costs α when the rule sits in the router; the paper
//! encodes that as a chunk of α negative requests (Section 2 / Appendix B).
//!
//! The subforest invariant **is** forwarding correctness here: if the true
//! LMP rule of a packet is absent from the router, no ancestor rule can be
//! present either (downward closure), so the packet can only hit the
//! default rule — never a wrong less-specific rule.

use otc_core::forest::Forest;
use otc_core::policy::{CachePolicy, PolicyFactory};
use otc_core::request::Request;
use otc_core::tree::{NodeId, Tree};
use otc_sim::engine::{EngineConfig, ShardHandle, ShardedEngine};
use otc_sim::telemetry::Timeline;
use otc_trie::RuleTree;
use otc_util::{SplitMix64, Zipf};

/// One event at the router/controller boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FibEvent {
    /// A data packet to this destination address.
    Packet(u32),
    /// A routing update (e.g. BGP) rewriting this rule's action.
    Update(NodeId),
}

/// Application-level outcome of a FIB-caching run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FibReport {
    /// Policy under test.
    pub name: String,
    /// Packets processed.
    pub packets: u64,
    /// Packets forwarded by the router (rule cached).
    pub hits: u64,
    /// Packets bounced to the controller.
    pub misses: u64,
    /// Rule updates processed.
    pub updates: u64,
    /// Updates that found their rule inside the router.
    pub updates_while_cached: u64,
    /// Total service cost (misses + paid negative rounds).
    pub service_cost: u64,
    /// Total reorganisation cost (α × nodes fetched/evicted).
    pub reorg_cost: u64,
}

impl FibReport {
    /// Fraction of packets bounced to the controller.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.misses as f64 / self.packets as f64
        }
    }

    /// Total monetary cost in the tree-caching model.
    #[must_use]
    pub fn total_cost(&self) -> u64 {
        self.service_cost + self.reorg_cost
    }

    /// Component-wise accumulation (aggregating per-shard reports).
    pub fn add(&mut self, other: &FibReport) {
        self.packets += other.packets;
        self.hits += other.hits;
        self.misses += other.misses;
        self.updates += other.updates;
        self.updates_while_cached += other.updates_while_cached;
        self.service_cost += other.service_cost;
        self.reorg_cost += other.reorg_cost;
    }
}

/// A FIB event whose rule has already been resolved to a tree node
/// (shard-local when routed through a [`Forest`]): packets carry their
/// longest-matching-prefix rule instead of a raw address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutedFibEvent {
    /// A data packet whose LMP rule is this node.
    Packet(NodeId),
    /// A routing update rewriting this rule.
    Update(NodeId),
}

/// Resolves and routes an event stream across a forest's shards: each
/// packet's LMP rule and each update's rule is looked up once, mapped to
/// its `(shard, local node)` home, and appended to that shard's stream
/// (preserving relative order within a shard).
#[must_use]
pub fn route_events(
    rules: &RuleTree,
    forest: &Forest,
    events: &[FibEvent],
) -> Vec<Vec<RoutedFibEvent>> {
    let mut per_shard: Vec<Vec<RoutedFibEvent>> = vec![Vec::new(); forest.num_shards()];
    for &event in events {
        let (rule, is_packet) = match event {
            FibEvent::Packet(addr) => (rules.lmp(addr), true),
            FibEvent::Update(rule) => (rule, false),
        };
        let (shard, local) = forest.route(rule);
        per_shard[shard.index()].push(if is_packet {
            RoutedFibEvent::Packet(local)
        } else {
            RoutedFibEvent::Update(local)
        });
    }
    per_shard
}

/// The one FIB drive loop, shared by every entry point: drives a resolved
/// event stream through one engine shard. Each packet becomes one positive
/// request to its rule; each update probes the cache (for the
/// `updates_while_cached` counter) and becomes a chunk of `alpha` negative
/// requests (the paper's encoding of the α router-update cost).
fn drive_fib(
    handle: &mut ShardHandle<'_, '_>,
    events: &[RoutedFibEvent],
    alpha: u64,
) -> Result<FibReport, String> {
    let mut report = FibReport { name: handle.policy_name().to_string(), ..FibReport::default() };
    for &event in events {
        match event {
            RoutedFibEvent::Packet(rule) => {
                report.packets += 1;
                let out = handle.step(Request::pos(rule))?;
                if out.paid {
                    report.misses += 1;
                    report.service_cost += 1;
                } else {
                    report.hits += 1;
                }
                report.reorg_cost += alpha * out.nodes_touched;
            }
            RoutedFibEvent::Update(rule) => {
                report.updates += 1;
                if handle.cache().contains(rule) {
                    report.updates_while_cached += 1;
                }
                for _ in 0..alpha {
                    let out = handle.step(Request::neg(rule))?;
                    report.service_cost += u64::from(out.paid);
                    report.reorg_cost += alpha * out.nodes_touched;
                }
            }
        }
    }
    Ok(report)
}

/// Runs a caching policy over a resolved event stream on one tree — the
/// single-shard reference pipeline (and the per-subtrie baseline the
/// sharded pipeline is differentially tested against).
///
/// # Panics
/// Panics if the policy violates the caching protocol (misreported
/// service payment or an inconsistent flush payload).
pub fn run_fib_routed(
    tree: &Tree,
    policy: &mut dyn CachePolicy,
    events: &[RoutedFibEvent],
    alpha: u64,
) -> FibReport {
    let mut engine = ShardedEngine::single_borrowed(tree, policy, EngineConfig::bare(alpha));
    let mut reports = engine.map_shards(|handle| drive_fib(handle, events, alpha));
    reports.pop().expect("one shard").expect("policy violated the caching protocol")
}

/// Runs a caching policy over an event stream (single shard, whole trie).
///
/// Each packet becomes one positive request to its LMP rule; each update
/// becomes a chunk of `alpha` negative requests to the rule (the paper's
/// encoding of the α router-update cost). A thin adapter over the engine:
/// resolves LMP per packet, then drives the single-shard pipeline.
///
/// # Panics
/// Panics if the policy violates the caching protocol.
pub fn run_fib(
    rules: &RuleTree,
    policy: &mut dyn CachePolicy,
    events: &[FibEvent],
    alpha: u64,
) -> FibReport {
    let routed: Vec<RoutedFibEvent> = events
        .iter()
        .map(|&event| match event {
            FibEvent::Packet(addr) => RoutedFibEvent::Packet(rules.lmp(addr)),
            FibEvent::Update(rule) => RoutedFibEvent::Update(rule),
        })
        .collect();
    run_fib_routed(rules.tree(), policy, &routed, alpha)
}

/// Outcome of a sharded FIB run: the aggregate plus per-shard breakdowns,
/// and — when the engine configuration enabled telemetry — the windowed
/// per-shard [`Timeline`].
#[derive(Debug, Clone, Default)]
pub struct ShardedFibReport {
    /// Component-wise sum over all shards.
    pub total: FibReport,
    /// Per-shard reports, in shard order.
    pub per_shard: Vec<FibReport>,
    /// Windowed telemetry (empty unless `EngineConfig::telemetry` was on).
    pub timeline: Timeline,
}

/// The sharded FIB pipeline: partitions the rule trie at the default route
/// into `shards` size-balanced subtrie groups ([`Forest::partition`]),
/// builds one policy per shard via `factory` (which decides the per-shard
/// capacity split), routes the event stream once, and drives all shards in
/// parallel on `threads` workers.
///
/// Per-shard results are deterministic and independent of `threads`; the
/// aggregate equals the component-wise sum of running each shard's event
/// stream through [`run_fib_routed`] on its own (pinned by the
/// differential test in `tests/fib_pipeline.rs`).
///
/// # Panics
/// Panics if any shard's policy violates the caching protocol.
#[must_use]
pub fn run_fib_sharded(
    rules: &RuleTree,
    factory: &dyn PolicyFactory,
    events: &[FibEvent],
    alpha: u64,
    shards: usize,
    threads: usize,
) -> ShardedFibReport {
    run_fib_sharded_cfg(rules, factory, events, EngineConfig::bare(alpha).threads(threads), shards)
}

/// [`run_fib_sharded`] with an explicit engine configuration — the entry
/// point for observed runs: pass
/// `EngineConfig::bare(alpha).audit_every(w).telemetry(true)` and the
/// returned report carries a per-window, per-shard [`Timeline`] of the
/// whole pipeline (this is how `exp_e7_fib` records `TIMELINE_e7.json`).
///
/// `cfg.alpha` is the α used for both the engine and the update-chunk
/// encoding.
///
/// # Panics
/// Panics if any shard's policy violates the caching protocol.
#[must_use]
pub fn run_fib_sharded_cfg(
    rules: &RuleTree,
    factory: &dyn PolicyFactory,
    events: &[FibEvent],
    cfg: EngineConfig,
    shards: usize,
) -> ShardedFibReport {
    let alpha = cfg.alpha;
    let forest = Forest::partition(rules.tree(), shards);
    let per_shard_events = route_events(rules, &forest, events);
    let mut engine = ShardedEngine::new(forest, factory, cfg);
    let per_shard: Vec<FibReport> = engine
        .map_shards(|handle| drive_fib(handle, &per_shard_events[handle.shard().index()], alpha))
        .into_iter()
        .collect::<Result<_, _>>()
        .expect("policy violated the caching protocol");
    let timeline = engine.timeline();
    let mut total = FibReport { name: per_shard[0].name.clone(), ..FibReport::default() };
    for report in &per_shard {
        total.add(report);
    }
    ShardedFibReport { total, per_shard, timeline }
}

/// Translates events into the flat request stream of the abstract problem,
/// also reporting the index range of every update chunk (used by the
/// Appendix-B canonicalization experiment).
#[must_use]
pub fn to_request_stream(
    rules: &RuleTree,
    events: &[FibEvent],
    alpha: u64,
) -> (Vec<Request>, Vec<std::ops::Range<usize>>) {
    let mut reqs = Vec::new();
    let mut chunks = Vec::new();
    for &event in events {
        match event {
            FibEvent::Packet(addr) => reqs.push(Request::pos(rules.lmp(addr))),
            FibEvent::Update(rule) => {
                let start = reqs.len();
                for _ in 0..alpha {
                    reqs.push(Request::neg(rule));
                }
                chunks.push(start..reqs.len());
            }
        }
    }
    (reqs, chunks)
}

/// Workload generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct FibWorkloadConfig {
    /// Number of events to generate.
    pub events: usize,
    /// Zipf exponent of rule popularity (packets).
    pub theta: f64,
    /// Probability that an event is a rule update.
    pub update_p: f64,
    /// Rejection-sampling attempts per packet address.
    pub addr_attempts: u32,
}

impl Default for FibWorkloadConfig {
    fn default() -> Self {
        Self { events: 100_000, theta: 1.0, update_p: 0.01, addr_attempts: 32 }
    }
}

/// Generates a packet/update stream over the rule table: packet
/// destinations follow Zipf-over-rules popularity (the Sarrar et al.
/// traffic model the paper cites); updates hit uniformly random
/// non-default rules (BGP churn is not popularity-correlated).
#[must_use]
pub fn generate_events(
    rules: &RuleTree,
    cfg: FibWorkloadConfig,
    rng: &mut SplitMix64,
) -> Vec<FibEvent> {
    let n = rules.len();
    // Popularity ranking: random permutation of rules (rank 0 hottest).
    let mut ranking: Vec<NodeId> = rules.tree().nodes().collect();
    rng.shuffle(&mut ranking);
    let zipf = Zipf::new(n, cfg.theta);
    let mut out = Vec::with_capacity(cfg.events);
    while out.len() < cfg.events {
        if n > 1 && rng.chance(cfg.update_p) {
            // Uniform over non-default rules (node 0 is the default route).
            let rule = NodeId(1 + rng.index(n - 1) as u32);
            out.push(FibEvent::Update(rule));
        } else {
            // Sample a rule by popularity, then an address whose LMP is
            // that rule; fall back to another rule when its address space
            // is fully covered by more-specific rules.
            let mut placed = false;
            for _ in 0..4 {
                let rule = ranking[zipf.sample(rng)];
                if let Some(addr) = rules.sample_addr_for(rule, rng, cfg.addr_attempts) {
                    out.push(FibEvent::Packet(addr));
                    placed = true;
                    break;
                }
            }
            if !placed {
                // Extremely covered table: fall back to a uniform address.
                out.push(FibEvent::Packet(rng.next_u64() as u32));
            }
        }
    }
    out
}

/// Checks forwarding correctness for a cache state: for every probe
/// address, the router's own LMP over (cached rules + default) must agree
/// with the controller's ground truth — either the true rule (hit) or the
/// default route (miss). Violations would mean mis-forwarded packets.
#[must_use]
pub fn forwarding_violations(
    rules: &RuleTree,
    cache: &otc_core::cache::CacheSet,
    probes: &[u32],
) -> usize {
    let mut violations = 0;
    for &addr in probes {
        let truth = rules.lmp(addr);
        // Router-side LMP: the most specific *cached* rule matching addr.
        let mut router_match = NodeId(0); // default rule always present
        let mut best_len = 0;
        for v in cache.iter() {
            let p = rules.prefix(v);
            if p.contains_addr(addr) && p.len() >= best_len {
                router_match = v;
                best_len = p.len();
            }
        }
        let ok =
            if cache.contains(truth) { router_match == truth } else { router_match == NodeId(0) };
        if !ok {
            violations += 1;
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use otc_baselines::DependentSetPolicy;
    use otc_core::tc::{TcConfig, TcFast};
    use otc_trie::parse_prefix;

    fn small_rules() -> RuleTree {
        RuleTree::build(&[
            parse_prefix("10.0.0.0/8").unwrap(),
            parse_prefix("10.1.0.0/16").unwrap(),
            parse_prefix("10.1.2.0/24").unwrap(),
            parse_prefix("192.168.0.0/16").unwrap(),
        ])
    }

    #[test]
    fn packets_and_updates_accounted() {
        let rules = small_rules();
        let tree = Arc::new(rules.tree().clone());
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(2, 3));
        let hot = rules.node_of(parse_prefix("192.168.0.0/16").unwrap()).unwrap();
        let addr = 0xC0A8_0001; // 192.168.0.1 → the /16 rule
        let events = vec![
            FibEvent::Packet(addr),
            FibEvent::Packet(addr), // second miss saturates → fetch
            FibEvent::Packet(addr), // hit
            FibEvent::Update(hot),  // α = 2 negatives, rule cached
        ];
        let report = run_fib(&rules, &mut tc, &events, 2);
        assert_eq!(report.packets, 3);
        assert_eq!(report.misses, 2);
        assert_eq!(report.hits, 1);
        assert_eq!(report.updates, 1);
        assert_eq!(report.updates_while_cached, 1);
        // Costs: 2 misses + fetch(α=2) + 2 paid negatives + eviction(α=2).
        assert_eq!(report.service_cost, 4);
        assert_eq!(report.reorg_cost, 4);
    }

    #[test]
    fn forwarding_always_correct_under_tc() {
        let rules = small_rules();
        let tree = Arc::new(rules.tree().clone());
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(2, 4));
        let mut rng = SplitMix64::new(1);
        let cfg = FibWorkloadConfig { events: 2000, theta: 1.0, update_p: 0.05, addr_attempts: 16 };
        let events = generate_events(&rules, cfg, &mut rng);
        let probes: Vec<u32> = (0..64).map(|_| rng.next_u64() as u32).collect();
        for chunk in events.chunks(100) {
            run_fib(&rules, &mut tc, chunk, 2);
            assert_eq!(
                forwarding_violations(&rules, tc.cache(), &probes),
                0,
                "subforest invariant must imply forwarding correctness"
            );
        }
    }

    #[test]
    fn request_stream_translation() {
        let rules = small_rules();
        let hot = rules.node_of(parse_prefix("10.1.2.0/24").unwrap()).unwrap();
        let events =
            vec![FibEvent::Packet(0x0A01_0203), FibEvent::Update(hot), FibEvent::Packet(0)];
        let (reqs, chunks) = to_request_stream(&rules, &events, 3);
        assert_eq!(reqs.len(), 1 + 3 + 1);
        assert_eq!(chunks, vec![1..4]);
        assert!(reqs[0].is_positive());
        assert_eq!(reqs[0].node, hot, "10.1.2.3 matches the /24");
        assert!(!reqs[1].is_positive());
        assert_eq!(reqs[4].node, NodeId(0), "address 0.0.0.0 → default route");
    }

    #[test]
    fn generator_respects_update_fraction() {
        let rules = small_rules();
        let mut rng = SplitMix64::new(2);
        let cfg =
            FibWorkloadConfig { events: 20_000, theta: 0.8, update_p: 0.2, addr_attempts: 16 };
        let events = generate_events(&rules, cfg, &mut rng);
        let updates = events.iter().filter(|e| matches!(e, FibEvent::Update(_))).count();
        let frac = updates as f64 / events.len() as f64;
        assert!((0.17..0.23).contains(&frac), "update fraction {frac}");
    }

    #[test]
    fn lru_bleeds_on_churn_tc_adapts() {
        // A hot rule that also churns: TC eventually stops caching it,
        // LRU keeps paying α per update forever.
        let rules = small_rules();
        let tree = Arc::new(rules.tree().clone());
        let hot = rules.node_of(parse_prefix("192.168.0.0/16").unwrap()).unwrap();
        let addr = 0xC0A8_0001;
        let alpha = 4u64;
        // Pattern: a burst of packets, then a heavier burst of updates.
        // TC stops paying after α negative rounds (it evicts); LRU pays
        // every single negative round of every update chunk.
        let mut events = Vec::new();
        for _ in 0..50 {
            for _ in 0..4 {
                events.push(FibEvent::Packet(addr));
            }
            for _ in 0..8 {
                events.push(FibEvent::Update(hot));
            }
        }
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, 4));
        let tc_report = run_fib(&rules, &mut tc, &events, alpha);
        let mut lru = DependentSetPolicy::lru(Arc::clone(&tree), 4);
        let lru_report = run_fib(&rules, &mut lru, &events, alpha);
        assert!(
            tc_report.total_cost() < lru_report.total_cost(),
            "TC {} must beat LRU {} under churn",
            tc_report.total_cost(),
            lru_report.total_cost()
        );
    }

    #[test]
    fn empty_events() {
        let rules = small_rules();
        let tree = Arc::new(rules.tree().clone());
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(2, 2));
        let report = run_fib(&rules, &mut tc, &[], 2);
        assert_eq!(report.total_cost(), 0);
        assert_eq!(report.miss_rate(), 0.0);
    }

    #[test]
    fn resumed_run_fib_accumulates() {
        // Chunked drives with one persistent policy must agree with one
        // continuous drive (the engine adopts the policy's cache state).
        let rules = small_rules();
        let tree = Arc::new(rules.tree().clone());
        let mut rng = SplitMix64::new(9);
        let cfg = FibWorkloadConfig { events: 1500, theta: 1.0, update_p: 0.05, addr_attempts: 16 };
        let events = generate_events(&rules, cfg, &mut rng);
        let mut tc_once = TcFast::new(Arc::clone(&tree), TcConfig::new(2, 3));
        let full = run_fib(&rules, &mut tc_once, &events, 2);
        let mut tc_chunked = TcFast::new(Arc::clone(&tree), TcConfig::new(2, 3));
        let mut sum = FibReport { name: full.name.clone(), ..FibReport::default() };
        for chunk in events.chunks(97) {
            sum.add(&run_fib(&rules, &mut tc_chunked, chunk, 2));
        }
        assert_eq!(sum, full);
    }

    #[test]
    fn sharded_fib_telemetry_windows_account_the_pipeline() {
        use otc_core::forest::ShardId;
        use otc_core::tree::Tree;

        let rules = small_rules();
        let mut rng = SplitMix64::new(11);
        let cfg = FibWorkloadConfig { events: 5000, theta: 1.0, update_p: 0.08, addr_attempts: 16 };
        let events = generate_events(&rules, cfg, &mut rng);
        let alpha = 2u64;
        let factory = |tree: Arc<Tree>, _shard: ShardId| {
            Box::new(TcFast::new(tree, TcConfig::new(alpha, 2)))
                as Box<dyn otc_core::policy::CachePolicy>
        };
        let window = 512usize;
        let engine_cfg = EngineConfig::bare(alpha).audit_every(window).telemetry(true);
        let observed = run_fib_sharded_cfg(&rules, &factory, &events, engine_cfg, 2);
        // Telemetry never changes the run…
        let plain = run_fib_sharded(&rules, &factory, &events, alpha, 2, 2);
        assert_eq!(observed.total, plain.total);
        assert_eq!(observed.per_shard, plain.per_shard);
        assert!(plain.timeline.windows.is_empty(), "no telemetry without the knob");
        // …and its windows account the pipeline's reorganisation cost and
        // paid negatives + misses exactly.
        let tl = &observed.timeline;
        assert!(!tl.windows.is_empty());
        assert_eq!(tl.alpha, alpha);
        assert_eq!(
            tl.sum(|w| w.reorg_cost(alpha)),
            observed.total.reorg_cost,
            "window reorg breakdown must reassemble the FIB report's reorg cost"
        );
        assert_eq!(
            tl.sum(|w| w.paid_rounds),
            observed.total.service_cost,
            "window paid rounds must reassemble the FIB report's service cost"
        );
        for w in &tl.windows {
            assert!(!w.partial || w.rounds <= window as u64);
            assert!(w.occupancy <= 2, "per-shard TCAM slice is 2 slots");
        }
    }

    #[test]
    fn sharded_fib_matches_sum_of_per_shard_runs() {
        use otc_core::forest::{Forest, ShardId};
        use otc_core::policy::CachePolicy;
        use otc_core::tree::Tree;

        let rules = small_rules();
        let mut rng = SplitMix64::new(3);
        let cfg = FibWorkloadConfig { events: 4000, theta: 1.0, update_p: 0.05, addr_attempts: 16 };
        let events = generate_events(&rules, cfg, &mut rng);
        let alpha = 2u64;
        let factory = |tree: Arc<Tree>, _shard: ShardId| {
            Box::new(TcFast::new(tree, TcConfig::new(alpha, 2))) as Box<dyn CachePolicy>
        };
        for shards in [1usize, 2] {
            let sharded = run_fib_sharded(&rules, &factory, &events, alpha, shards, shards);
            let forest = Forest::partition(rules.tree(), shards);
            assert_eq!(sharded.per_shard.len(), forest.num_shards());
            let per_shard_events = route_events(&rules, &forest, &events);
            let mut sum = FibReport { name: "tc".to_string(), ..FibReport::default() };
            for (s, shard_events) in per_shard_events.iter().enumerate() {
                let sid = ShardId(s as u32);
                let mut policy = factory(Arc::clone(forest.tree(sid)), sid);
                let solo = run_fib_routed(forest.tree(sid), policy.as_mut(), shard_events, alpha);
                assert_eq!(sharded.per_shard[s], solo, "shard {s}");
                sum.add(&solo);
            }
            assert_eq!(sharded.total, sum, "{shards} shards");
        }
    }
}
