//! The router/controller FIB-caching system (paper, Section 2, Figure 1).
//!
//! A router holds a capacity-bounded cache of forwarding rules (its TCAM);
//! an SDN controller holds the full table and runs the caching algorithm.
//! Packets whose longest-matching-prefix rule is cached are forwarded at
//! cost 0; others fall through the artificial default rule to the
//! controller at cost 1 — a positive request. A rule update is free at the
//! controller but costs α when the rule sits in the router; the paper
//! encodes that as a chunk of α negative requests (Section 2 / Appendix B).
//!
//! The subforest invariant **is** forwarding correctness here: if the true
//! LMP rule of a packet is absent from the router, no ancestor rule can be
//! present either (downward closure), so the packet can only hit the
//! default rule — never a wrong less-specific rule.

use otc_core::policy::{ActionBuffer, CachePolicy};
use otc_core::request::Request;
use otc_core::tree::NodeId;
use otc_trie::RuleTree;
use otc_util::{SplitMix64, Zipf};

/// One event at the router/controller boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FibEvent {
    /// A data packet to this destination address.
    Packet(u32),
    /// A routing update (e.g. BGP) rewriting this rule's action.
    Update(NodeId),
}

/// Application-level outcome of a FIB-caching run.
#[derive(Debug, Clone, Default)]
pub struct FibReport {
    /// Policy under test.
    pub name: String,
    /// Packets processed.
    pub packets: u64,
    /// Packets forwarded by the router (rule cached).
    pub hits: u64,
    /// Packets bounced to the controller.
    pub misses: u64,
    /// Rule updates processed.
    pub updates: u64,
    /// Updates that found their rule inside the router.
    pub updates_while_cached: u64,
    /// Total service cost (misses + paid negative rounds).
    pub service_cost: u64,
    /// Total reorganisation cost (α × nodes fetched/evicted).
    pub reorg_cost: u64,
}

impl FibReport {
    /// Fraction of packets bounced to the controller.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.misses as f64 / self.packets as f64
        }
    }

    /// Total monetary cost in the tree-caching model.
    #[must_use]
    pub fn total_cost(&self) -> u64 {
        self.service_cost + self.reorg_cost
    }
}

/// Runs a caching policy over an event stream.
///
/// Each packet becomes one positive request to its LMP rule; each update
/// becomes a chunk of `alpha` negative requests to the rule (the paper's
/// encoding of the α router-update cost).
pub fn run_fib(
    rules: &RuleTree,
    policy: &mut dyn CachePolicy,
    events: &[FibEvent],
    alpha: u64,
) -> FibReport {
    let mut report = FibReport { name: policy.name().to_string(), ..FibReport::default() };
    // One reusable buffer for the whole event stream: steady-state events
    // allocate nothing.
    let mut buf = ActionBuffer::new();
    for &event in events {
        match event {
            FibEvent::Packet(addr) => {
                let rule = rules.lmp(addr);
                report.packets += 1;
                policy.step(Request::pos(rule), &mut buf);
                if buf.paid_service() {
                    report.misses += 1;
                    report.service_cost += 1;
                } else {
                    report.hits += 1;
                }
                report.reorg_cost += alpha * buf.nodes_touched() as u64;
            }
            FibEvent::Update(rule) => {
                report.updates += 1;
                if policy.cache().contains(rule) {
                    report.updates_while_cached += 1;
                }
                for _ in 0..alpha {
                    policy.step(Request::neg(rule), &mut buf);
                    report.service_cost += u64::from(buf.paid_service());
                    report.reorg_cost += alpha * buf.nodes_touched() as u64;
                }
            }
        }
    }
    report
}

/// Translates events into the flat request stream of the abstract problem,
/// also reporting the index range of every update chunk (used by the
/// Appendix-B canonicalization experiment).
#[must_use]
pub fn to_request_stream(
    rules: &RuleTree,
    events: &[FibEvent],
    alpha: u64,
) -> (Vec<Request>, Vec<std::ops::Range<usize>>) {
    let mut reqs = Vec::new();
    let mut chunks = Vec::new();
    for &event in events {
        match event {
            FibEvent::Packet(addr) => reqs.push(Request::pos(rules.lmp(addr))),
            FibEvent::Update(rule) => {
                let start = reqs.len();
                for _ in 0..alpha {
                    reqs.push(Request::neg(rule));
                }
                chunks.push(start..reqs.len());
            }
        }
    }
    (reqs, chunks)
}

/// Workload generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct FibWorkloadConfig {
    /// Number of events to generate.
    pub events: usize,
    /// Zipf exponent of rule popularity (packets).
    pub theta: f64,
    /// Probability that an event is a rule update.
    pub update_p: f64,
    /// Rejection-sampling attempts per packet address.
    pub addr_attempts: u32,
}

impl Default for FibWorkloadConfig {
    fn default() -> Self {
        Self { events: 100_000, theta: 1.0, update_p: 0.01, addr_attempts: 32 }
    }
}

/// Generates a packet/update stream over the rule table: packet
/// destinations follow Zipf-over-rules popularity (the Sarrar et al.
/// traffic model the paper cites); updates hit uniformly random
/// non-default rules (BGP churn is not popularity-correlated).
#[must_use]
pub fn generate_events(
    rules: &RuleTree,
    cfg: FibWorkloadConfig,
    rng: &mut SplitMix64,
) -> Vec<FibEvent> {
    let n = rules.len();
    // Popularity ranking: random permutation of rules (rank 0 hottest).
    let mut ranking: Vec<NodeId> = rules.tree().nodes().collect();
    rng.shuffle(&mut ranking);
    let zipf = Zipf::new(n, cfg.theta);
    let mut out = Vec::with_capacity(cfg.events);
    while out.len() < cfg.events {
        if n > 1 && rng.chance(cfg.update_p) {
            // Uniform over non-default rules (node 0 is the default route).
            let rule = NodeId(1 + rng.index(n - 1) as u32);
            out.push(FibEvent::Update(rule));
        } else {
            // Sample a rule by popularity, then an address whose LMP is
            // that rule; fall back to another rule when its address space
            // is fully covered by more-specific rules.
            let mut placed = false;
            for _ in 0..4 {
                let rule = ranking[zipf.sample(rng)];
                if let Some(addr) = rules.sample_addr_for(rule, rng, cfg.addr_attempts) {
                    out.push(FibEvent::Packet(addr));
                    placed = true;
                    break;
                }
            }
            if !placed {
                // Extremely covered table: fall back to a uniform address.
                out.push(FibEvent::Packet(rng.next_u64() as u32));
            }
        }
    }
    out
}

/// Checks forwarding correctness for a cache state: for every probe
/// address, the router's own LMP over (cached rules + default) must agree
/// with the controller's ground truth — either the true rule (hit) or the
/// default route (miss). Violations would mean mis-forwarded packets.
#[must_use]
pub fn forwarding_violations(
    rules: &RuleTree,
    cache: &otc_core::cache::CacheSet,
    probes: &[u32],
) -> usize {
    let mut violations = 0;
    for &addr in probes {
        let truth = rules.lmp(addr);
        // Router-side LMP: the most specific *cached* rule matching addr.
        let mut router_match = NodeId(0); // default rule always present
        let mut best_len = 0;
        for v in cache.iter() {
            let p = rules.prefix(v);
            if p.contains_addr(addr) && p.len() >= best_len {
                router_match = v;
                best_len = p.len();
            }
        }
        let ok =
            if cache.contains(truth) { router_match == truth } else { router_match == NodeId(0) };
        if !ok {
            violations += 1;
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use otc_baselines::DependentSetPolicy;
    use otc_core::tc::{TcConfig, TcFast};
    use otc_trie::parse_prefix;

    fn small_rules() -> RuleTree {
        RuleTree::build(&[
            parse_prefix("10.0.0.0/8").unwrap(),
            parse_prefix("10.1.0.0/16").unwrap(),
            parse_prefix("10.1.2.0/24").unwrap(),
            parse_prefix("192.168.0.0/16").unwrap(),
        ])
    }

    #[test]
    fn packets_and_updates_accounted() {
        let rules = small_rules();
        let tree = Arc::new(rules.tree().clone());
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(2, 3));
        let hot = rules.node_of(parse_prefix("192.168.0.0/16").unwrap()).unwrap();
        let addr = 0xC0A8_0001; // 192.168.0.1 → the /16 rule
        let events = vec![
            FibEvent::Packet(addr),
            FibEvent::Packet(addr), // second miss saturates → fetch
            FibEvent::Packet(addr), // hit
            FibEvent::Update(hot),  // α = 2 negatives, rule cached
        ];
        let report = run_fib(&rules, &mut tc, &events, 2);
        assert_eq!(report.packets, 3);
        assert_eq!(report.misses, 2);
        assert_eq!(report.hits, 1);
        assert_eq!(report.updates, 1);
        assert_eq!(report.updates_while_cached, 1);
        // Costs: 2 misses + fetch(α=2) + 2 paid negatives + eviction(α=2).
        assert_eq!(report.service_cost, 4);
        assert_eq!(report.reorg_cost, 4);
    }

    #[test]
    fn forwarding_always_correct_under_tc() {
        let rules = small_rules();
        let tree = Arc::new(rules.tree().clone());
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(2, 4));
        let mut rng = SplitMix64::new(1);
        let cfg = FibWorkloadConfig { events: 2000, theta: 1.0, update_p: 0.05, addr_attempts: 16 };
        let events = generate_events(&rules, cfg, &mut rng);
        let probes: Vec<u32> = (0..64).map(|_| rng.next_u64() as u32).collect();
        for chunk in events.chunks(100) {
            run_fib(&rules, &mut tc, chunk, 2);
            assert_eq!(
                forwarding_violations(&rules, tc.cache(), &probes),
                0,
                "subforest invariant must imply forwarding correctness"
            );
        }
    }

    #[test]
    fn request_stream_translation() {
        let rules = small_rules();
        let hot = rules.node_of(parse_prefix("10.1.2.0/24").unwrap()).unwrap();
        let events =
            vec![FibEvent::Packet(0x0A01_0203), FibEvent::Update(hot), FibEvent::Packet(0)];
        let (reqs, chunks) = to_request_stream(&rules, &events, 3);
        assert_eq!(reqs.len(), 1 + 3 + 1);
        assert_eq!(chunks, vec![1..4]);
        assert!(reqs[0].is_positive());
        assert_eq!(reqs[0].node, hot, "10.1.2.3 matches the /24");
        assert!(!reqs[1].is_positive());
        assert_eq!(reqs[4].node, NodeId(0), "address 0.0.0.0 → default route");
    }

    #[test]
    fn generator_respects_update_fraction() {
        let rules = small_rules();
        let mut rng = SplitMix64::new(2);
        let cfg =
            FibWorkloadConfig { events: 20_000, theta: 0.8, update_p: 0.2, addr_attempts: 16 };
        let events = generate_events(&rules, cfg, &mut rng);
        let updates = events.iter().filter(|e| matches!(e, FibEvent::Update(_))).count();
        let frac = updates as f64 / events.len() as f64;
        assert!((0.17..0.23).contains(&frac), "update fraction {frac}");
    }

    #[test]
    fn lru_bleeds_on_churn_tc_adapts() {
        // A hot rule that also churns: TC eventually stops caching it,
        // LRU keeps paying α per update forever.
        let rules = small_rules();
        let tree = Arc::new(rules.tree().clone());
        let hot = rules.node_of(parse_prefix("192.168.0.0/16").unwrap()).unwrap();
        let addr = 0xC0A8_0001;
        let alpha = 4u64;
        // Pattern: a burst of packets, then a heavier burst of updates.
        // TC stops paying after α negative rounds (it evicts); LRU pays
        // every single negative round of every update chunk.
        let mut events = Vec::new();
        for _ in 0..50 {
            for _ in 0..4 {
                events.push(FibEvent::Packet(addr));
            }
            for _ in 0..8 {
                events.push(FibEvent::Update(hot));
            }
        }
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, 4));
        let tc_report = run_fib(&rules, &mut tc, &events, alpha);
        let mut lru = DependentSetPolicy::lru(Arc::clone(&tree), 4);
        let lru_report = run_fib(&rules, &mut lru, &events, alpha);
        assert!(
            tc_report.total_cost() < lru_report.total_cost(),
            "TC {} must beat LRU {} under churn",
            tc_report.total_cost(),
            lru_report.total_cost()
        );
    }

    #[test]
    fn empty_events() {
        let rules = small_rules();
        let tree = Arc::new(rules.tree().clone());
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(2, 2));
        let report = run_fib(&rules, &mut tc, &[], 2);
        assert_eq!(report.total_cost(), 0);
        assert_eq!(report.miss_rate(), 0.0);
    }
}
