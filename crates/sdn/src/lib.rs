//! # otc-sdn — the FIB-caching application (paper, Section 2)
//!
//! End-to-end model of the router/controller architecture the paper
//! motivates: a capacity-bounded router TCAM, a controller holding the
//! full rule table and running a caching policy, packet streams with
//! Zipf-popular destinations, and BGP-style rule-update churn encoded as
//! α-chunks of negative requests.
//!
//! * [`fib`] — the system model, workload generator, and forwarding-
//!   correctness checker, including the **sharded pipeline**
//!   ([`run_fib_sharded`]): the rule trie partitioned at the default
//!   route into independent subtrie shards, each with its own policy,
//!   driven in parallel through `otc-sim`'s [`otc_sim::ShardedEngine`];
//! * [`canonical`] — Appendix B: recorded solutions, the independent
//!   solution evaluator, and the factor-2 canonicalization transform.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod canonical;
pub mod fib;

pub use canonical::{canonicalize, evaluate_solution, is_canonical, record_run, Solution};
pub use fib::{
    forwarding_violations, generate_events, route_events, run_fib, run_fib_routed, run_fib_sharded,
    run_fib_sharded_cfg, to_request_stream, FibEvent, FibReport, FibWorkloadConfig, RoutedFibEvent,
    ShardedFibReport,
};
