//! Property tests for the histogram and the exposition codecs.
//!
//! The histogram's contract is checked against a naive oracle (a plain
//! `Vec<u64>` of every observation): bucket placement, count/sum/min/max
//! bookkeeping, and the quantile *bound* guarantee — the true
//! rank-selected value always lies inside the returned `[lo, hi]`
//! interval. Merge is checked for associativity and commutativity, and
//! the JSON codec for exact round-trips plus every-prefix rejection.

use otc_obs::hist::{bucket_hi, bucket_lo, bucket_of};
use otc_obs::{Histogram, HistogramSnapshot, MetricRecord, MetricValue, MetricsSnapshot, BUCKETS};
use proptest::prelude::*;

/// The naive oracle: keeps every observation.
#[derive(Default)]
struct Oracle {
    values: Vec<u64>,
}

impl Oracle {
    fn record(&mut self, v: u64) {
        self.values.push(v);
    }

    /// The exact value at rank `ceil(n·num/den)` (1-based, min rank 1).
    fn rank_value(&self, num: u32, den: u32) -> Option<u64> {
        if self.values.is_empty() || den == 0 || num > den {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_unstable();
        let total = sorted.len() as u128;
        let rank = (total * u128::from(num)).div_ceil(u128::from(den)).max(1);
        sorted.get(usize::try_from(rank - 1).ok()?).copied()
    }
}

/// Values spread across the full u64 range so every bucket is reachable:
/// a shift in [0, 64) applied to a small base.
fn arb_value() -> impl Strategy<Value = u64> {
    (any::<u64>(), 0u32..64).prop_map(|(base, shift)| base >> shift)
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #[test]
    fn bucket_of_matches_bounds(v in any::<u64>()) {
        let b = bucket_of(v);
        prop_assert!(b < BUCKETS);
        prop_assert!(bucket_lo(b) <= v && v <= bucket_hi(b));
    }

    #[test]
    fn histogram_matches_oracle(values in prop::collection::vec(arb_value(), 1..200)) {
        let mut oracle = Oracle::default();
        let h = Histogram::new();
        for &v in &values {
            oracle.record(v);
            h.record(v);
        }
        let s = h.snapshot();

        // Bookkeeping matches the oracle exactly.
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.sum, values.iter().fold(0u64, |a, &v| a.wrapping_add(v)));
        prop_assert_eq!(s.min, values.iter().copied().min().unwrap_or(u64::MAX));
        prop_assert_eq!(s.max, values.iter().copied().max().unwrap_or(0));

        // Every bucket count matches a from-scratch placement.
        let mut expect = [0u64; BUCKETS];
        for &v in &values {
            expect[bucket_of(v)] += 1;
        }
        prop_assert_eq!(s.buckets, expect);

        // The quantile bound guarantee, across a quantile sweep.
        for (num, den) in [(1, 2), (9, 10), (99, 100), (999, 1000), (1, 100), (1, 1)] {
            let truth = oracle.rank_value(num, den);
            let bounds = s.quantile(num, den);
            match (truth, bounds) {
                (Some(t), Some((lo, hi))) => {
                    prop_assert!(
                        lo <= t && t <= hi,
                        "rank value {} outside [{}, {}] for {}/{}",
                        t, lo, hi, num, den
                    );
                }
                (None, None) => {}
                (t, b) => prop_assert!(false, "oracle {:?} vs histogram {:?}", t, b),
            }
        }
    }

    #[test]
    fn merge_is_commutative_and_associative(
        xs in prop::collection::vec(arb_value(), 0..80),
        ys in prop::collection::vec(arb_value(), 0..80),
        zs in prop::collection::vec(arb_value(), 0..80),
    ) {
        let (a, b, c) = (snapshot_of(&xs), snapshot_of(&ys), snapshot_of(&zs));

        // a + b == b + a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        // (a + b) + c == a + (b + c)
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // Merge equals recording the concatenation (sum is wrapping in
        // record but saturating in merge, so compare buckets/min/max).
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        let whole = snapshot_of(&all);
        prop_assert_eq!(ab.buckets, whole.buckets);
        prop_assert_eq!(ab.count, whole.count);
        prop_assert_eq!(ab.min, whole.min);
        prop_assert_eq!(ab.max, whole.max);
    }

    #[test]
    fn merged_quantiles_still_bound_the_oracle(
        xs in prop::collection::vec(arb_value(), 1..80),
        ys in prop::collection::vec(arb_value(), 1..80),
    ) {
        let mut merged = snapshot_of(&xs);
        merged.merge(&snapshot_of(&ys));
        let mut oracle = Oracle::default();
        for &v in xs.iter().chain(&ys) {
            oracle.record(v);
        }
        for (num, den) in [(1, 2), (99, 100), (999, 1000)] {
            if let (Some(t), Some((lo, hi))) = (oracle.rank_value(num, den), merged.quantile(num, den)) {
                prop_assert!(lo <= t && t <= hi);
            }
        }
    }

    #[test]
    fn json_round_trip_and_prefix_rejection(
        values in prop::collection::vec(arb_value(), 0..40),
        counter in any::<u64>(),
        gauge in any::<u64>(),
        label_seed in prop::collection::vec(0u8..26, 1..8),
    ) {
        let label: String = label_seed.iter().map(|&c| char::from(b'a' + c)).collect();
        let snap = MetricsSnapshot {
            metrics: vec![
                MetricRecord {
                    name: "otc_test_hist_nanos".to_owned(),
                    labels: vec![("shard".to_owned(), label)],
                    value: MetricValue::Histogram(snapshot_of(&values)),
                },
                MetricRecord {
                    name: "otc_test_gauge".to_owned(),
                    labels: vec![],
                    value: MetricValue::Gauge(gauge),
                },
                MetricRecord {
                    name: "otc_test_total".to_owned(),
                    labels: vec![],
                    value: MetricValue::Counter(counter),
                },
            ],
        };
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json);
        prop_assert_eq!(back.as_ref(), Ok(&snap));
        prop_assert_eq!(back.map(|s| s.to_json()), Ok(json.clone()));

        // Strictness: every proper prefix fails with a typed error.
        for cut in 0..json.len() {
            prop_assert!(MetricsSnapshot::from_json(&json[..cut]).is_err());
        }
    }
}
