//! Fixed-bucket log2 latency histograms.
//!
//! A [`Histogram`] is 64 power-of-two buckets plus count/sum/min/max,
//! all relaxed atomics: `record()` is lock-free, branch-light, and
//! allocation-free (proven by the counting-allocator test in
//! `otc-bench`), so it is safe to call from the hottest serving paths.
//! [`HistogramSnapshot`] is the plain-data view: mergeable across shards
//! (merge is associative and commutative), comparable, and the unit the
//! exposition codecs serialise.
//!
//! Quantiles are *exact in rank, bounded in value*: `quantile(q)` finds
//! the bucket holding the value of exact rank `ceil(q·count)` and
//! returns that bucket's bounds clamped to the observed min/max — no
//! interpolation, so the true value provably lies in the returned
//! interval. The `p50`/`p99`/`p999` helpers report the upper bound,
//! which is the conservative (pessimistic) latency estimate.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per power of two, covering all of `u64`.
pub const BUCKETS: usize = 64;

/// The bucket index a value lands in.
///
/// Bucket 0 holds `{0, 1}`; bucket `i >= 1` holds `[2^i, 2^{i+1} - 1]`;
/// bucket 63 tops out at `u64::MAX`.
#[inline]
#[must_use]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        63 - value.leading_zeros() as usize
    }
}

/// Inclusive lower bound of a bucket (see [`bucket_of`]). Indices past
/// 63 are clamped.
#[must_use]
pub fn bucket_lo(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else {
        1u64 << bucket.min(63)
    }
}

/// Inclusive upper bound of a bucket (see [`bucket_of`]). Indices past
/// 62 saturate at `u64::MAX`.
#[must_use]
pub fn bucket_hi(bucket: usize) -> u64 {
    if bucket >= 63 {
        u64::MAX
    } else {
        (1u64 << (bucket + 1)) - 1
    }
}

/// A concurrent log2 histogram. See the module docs for the contract.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation. Lock-free, allocation-free, wait-free on
    /// x86: four relaxed RMW operations, no branches past the bucket
    /// index. `sum` wraps on overflow (2^64 ns ≈ 584 years of latency).
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(b) = self.buckets.get(bucket_of(value)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A plain-data copy of the current state.
    ///
    /// The reported `count` is the sum of the bucket loads, so a
    /// snapshot is always internally consistent for quantile extraction
    /// even if it races with concurrent `record()` calls (which may be
    /// half-applied: observation is lossy at the margin, never wrong in
    /// rank).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        let mut count = 0u64;
        for (dst, src) in buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
            count = count.saturating_add(*dst);
        }
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data view of a [`Histogram`]: mergeable, comparable,
/// serialisable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (bucket `i` per [`bucket_of`]).
    pub buckets: [u64; BUCKETS],
    /// Total observations (sum of `buckets`, saturating).
    pub count: u64,
    /// Sum of all observed values (wrapping).
    pub sum: u64,
    /// Smallest observed value; `u64::MAX` when empty.
    pub min: u64,
    /// Largest observed value; `0` when empty.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self { buckets: [0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl HistogramSnapshot {
    /// Whether any observation has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Fold another snapshot into this one.
    ///
    /// Counts and sums add saturating (saturating addition is
    /// associative and commutative, so shard merge order never matters);
    /// min/max combine by min/max.
    pub fn merge(&mut self, other: &Self) {
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst = dst.saturating_add(*src);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Bounds on the value of exact rank `ceil(count · num / den)`
    /// (1-based, clamped to at least rank 1).
    ///
    /// Returns `None` when the histogram is empty, `num > den`, or
    /// `den == 0`; otherwise `Some((lo, hi))` with the guarantee that
    /// the true rank-selected value lies in `[lo, hi]` (the containing
    /// bucket's bounds tightened by the observed min/max).
    #[must_use]
    pub fn quantile(&self, num: u32, den: u32) -> Option<(u64, u64)> {
        if den == 0 || num > den || self.count == 0 {
            return None;
        }
        let total: u128 = self.buckets.iter().map(|&c| u128::from(c)).sum();
        if total == 0 {
            return None;
        }
        let rank = (total * u128::from(num)).div_ceil(u128::from(den)).max(1);
        let mut seen = 0u128;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += u128::from(c);
            if seen >= rank {
                let lo = bucket_lo(i).max(self.min);
                let hi = bucket_hi(i).min(self.max);
                // A torn concurrent snapshot can leave min/max behind the
                // buckets; fall back to the raw bucket bounds then.
                if lo > hi {
                    return Some((bucket_lo(i), bucket_hi(i)));
                }
                return Some((lo, hi));
            }
        }
        None
    }

    /// Conservative (upper-bound) median. `None` when empty.
    #[must_use]
    pub fn p50(&self) -> Option<u64> {
        self.quantile(1, 2).map(|(_, hi)| hi)
    }

    /// Conservative (upper-bound) 99th percentile. `None` when empty.
    #[must_use]
    pub fn p99(&self) -> Option<u64> {
        self.quantile(99, 100).map(|(_, hi)| hi)
    }

    /// Conservative (upper-bound) 99.9th percentile. `None` when empty.
    #[must_use]
    pub fn p999(&self) -> Option<u64> {
        self.quantile(999, 1000).map(|(_, hi)| hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_u64() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), 63);
        for b in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_lo(b)), b);
            assert_eq!(bucket_of(bucket_hi(b)), b);
            if b > 0 {
                assert_eq!(bucket_lo(b), bucket_hi(b - 1) + 1);
            }
        }
    }

    #[test]
    fn record_and_snapshot_roundtrip() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 100, 1 << 20, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[1], 2);
        assert_eq!(s.buckets[63], 1);
    }

    #[test]
    fn empty_quantiles_are_none() {
        let s = HistogramSnapshot::default();
        assert!(s.is_empty());
        assert_eq!(s.p50(), None);
        assert_eq!(s.quantile(1, 0), None);
        assert_eq!(s.quantile(2, 1), None);
    }

    #[test]
    fn single_value_quantiles_are_tight() {
        let h = Histogram::new();
        h.record(1000);
        let s = h.snapshot();
        assert_eq!(s.quantile(1, 2), Some((1000, 1000)));
        assert_eq!(s.p50(), Some(1000));
        assert_eq!(s.p99(), Some(1000));
        assert_eq!(s.p999(), Some(1000));
    }

    #[test]
    fn merge_identity_is_default() {
        let h = Histogram::new();
        h.record(7);
        h.record(9000);
        let mut a = h.snapshot();
        let before = a.clone();
        a.merge(&HistogramSnapshot::default());
        assert_eq!(a, before);
    }
}
