//! # otc-obs — wall-clock observability side-band
//!
//! Everything in this workspace up to now is *deterministic* telemetry:
//! costs, window counters, rebalance schedules — pure functions of the
//! logged request stream. This crate is the one place wall-clock time is
//! allowed to exist. It provides:
//!
//! - [`clock`] — the single audited wall-clock seam. Nothing else in the
//!   workspace may name `std::time::Instant` (otc-lint rule R2 allowlists
//!   exactly `crates/obs/src/clock.rs`).
//! - [`hist`] — fixed 64-bucket log2 latency histograms with zero-alloc,
//!   lock-free `record()`, mergeable snapshots, and exact-rank
//!   p50/p99/p999 extraction (bounds, not interpolations).
//! - [`registry`] — a lock-light named-metric registry (counters, gauges,
//!   histograms) whose snapshots are deterministically ordered.
//! - [`expo`] — strict JSON and Prometheus-style text exposition codecs
//!   for registry snapshots.
//!
//! ## Invariant #8: observation never changes results
//!
//! Metrics are a pure side-band. Recording into this crate must never
//! influence a request outcome, a trace byte, a telemetry window, or a
//! rebalance decision. The serving layer proves this differentially
//! (identical workloads with metrics on / off / scraped concurrently are
//! bit-identical); otc-lint enforces it statically: determinism crates
//! must not depend on `otc-obs` at all (rule R7), so histogram values
//! *cannot* flow into state transitions.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod clock;
pub mod expo;
pub mod hist;
pub mod registry;

pub use expo::{ExpoError, MetricRecord, MetricValue, MetricsSnapshot};
pub use hist::{Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{Counter, Gauge, Registry};
