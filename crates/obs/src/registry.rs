//! Lock-light named-metric registry.
//!
//! Registration (naming a counter/gauge/histogram) takes a mutex once
//! and hands back an `Arc` handle; the hot path — bumping the handle —
//! is pure relaxed atomics with the registry out of the picture
//! entirely. [`Registry::snapshot`] produces a [`MetricsSnapshot`]
//! sorted by `(name, labels)`, so exposition output is deterministic for
//! a given set of recorded values regardless of registration order.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::expo::{MetricRecord, MetricValue, MetricsSnapshot};
use crate::hist::Histogram;

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n` (wrapping).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the value to at least `v` (running maximum).
    #[inline]
    pub fn raise_to(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    handle: Handle,
}

/// A named-metric registry. See the module docs.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

fn normalize(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> =
        labels.iter().map(|&(k, v)| (k.to_owned(), v.to_owned())).collect();
    out.sort();
    out
}

impl Registry {
    /// A fresh, empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Entry>> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Register (or look up) a counter under `(name, labels)`.
    ///
    /// Re-registering the same `(name, labels)` returns the existing
    /// handle, so independent subsystems can share a series. If the
    /// series exists under a *different* metric kind, a fresh detached
    /// handle is returned instead of panicking — observation must never
    /// take the process down.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let labels = normalize(labels);
        let mut entries = self.lock();
        for e in entries.iter() {
            if e.name == name && e.labels == labels {
                if let Handle::Counter(c) = &e.handle {
                    return Arc::clone(c);
                }
                return Arc::new(Counter::default());
            }
        }
        let c = Arc::new(Counter::default());
        entries.push(Entry {
            name: name.to_owned(),
            labels,
            handle: Handle::Counter(Arc::clone(&c)),
        });
        c
    }

    /// Register (or look up) a gauge under `(name, labels)`. Same
    /// collision rules as [`Registry::counter`].
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let labels = normalize(labels);
        let mut entries = self.lock();
        for e in entries.iter() {
            if e.name == name && e.labels == labels {
                if let Handle::Gauge(g) = &e.handle {
                    return Arc::clone(g);
                }
                return Arc::new(Gauge::default());
            }
        }
        let g = Arc::new(Gauge::default());
        entries.push(Entry {
            name: name.to_owned(),
            labels,
            handle: Handle::Gauge(Arc::clone(&g)),
        });
        g
    }

    /// Register (or look up) a histogram under `(name, labels)`. Same
    /// collision rules as [`Registry::counter`].
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let labels = normalize(labels);
        let mut entries = self.lock();
        for e in entries.iter() {
            if e.name == name && e.labels == labels {
                if let Handle::Histogram(h) = &e.handle {
                    return Arc::clone(h);
                }
                return Arc::new(Histogram::new());
            }
        }
        let h = Arc::new(Histogram::new());
        entries.push(Entry {
            name: name.to_owned(),
            labels,
            handle: Handle::Histogram(Arc::clone(&h)),
        });
        h
    }

    /// A plain-data snapshot of every registered series, sorted by
    /// `(name, labels)`.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.lock();
        let mut metrics: Vec<MetricRecord> = entries
            .iter()
            .map(|e| MetricRecord {
                name: e.name.clone(),
                labels: e.labels.clone(),
                value: match &e.handle {
                    Handle::Counter(c) => MetricValue::Counter(c.get()),
                    Handle::Gauge(g) => MetricValue::Gauge(g.get()),
                    Handle::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        drop(entries);
        metrics.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        MetricsSnapshot { metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reregistration_shares_the_series() {
        let r = Registry::new();
        let a = r.counter("hits", &[("shard", "0")]);
        let b = r.counter("hits", &[("shard", "0")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.snapshot().metrics.len(), 1);
    }

    #[test]
    fn label_order_is_normalized() {
        let r = Registry::new();
        let a = r.counter("x", &[("b", "2"), ("a", "1")]);
        let b = r.counter("x", &[("a", "1"), ("b", "2")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn kind_collision_detaches_instead_of_panicking() {
        let r = Registry::new();
        let c = r.counter("clash", &[]);
        let g = r.gauge("clash", &[]);
        c.inc();
        g.set(100);
        // The registry still reports the original counter series.
        let snap = r.snapshot();
        assert_eq!(snap.metrics.len(), 1);
        assert_eq!(snap.metrics[0].value, MetricValue::Counter(1));
    }

    #[test]
    fn snapshot_order_is_independent_of_registration_order() {
        let r1 = Registry::new();
        r1.counter("b", &[]).inc();
        r1.gauge("a", &[]).set(5);
        let r2 = Registry::new();
        r2.gauge("a", &[]).set(5);
        r2.counter("b", &[]).inc();
        assert_eq!(r1.snapshot(), r2.snapshot());
    }
}
