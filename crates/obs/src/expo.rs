//! Exposition codecs for metric snapshots.
//!
//! Two output formats over the same plain-data model:
//!
//! - **JSON** (`to_json`/`from_json`): a canonical, whitespace-free
//!   encoding with a strict parser. "Strict" means the parser accepts
//!   *exactly* the canonical serialisation — fixed key order, sorted
//!   label keys, no leading zeros, no trailing bytes — so every
//!   truncation or mutation of a valid document is rejected with a typed
//!   [`ExpoError`] carrying the byte position. Round-trip is exact:
//!   `from_json(to_json(s)) == s`.
//! - **Prometheus text** (`to_prometheus`): the conventional
//!   `# TYPE`-annotated exposition with cumulative `_bucket{le="…"}`
//!   lines, `_sum` and `_count` per histogram. Emit-only.
//!
//! This file is a parse path: otc-lint rule R3 applies (typed errors,
//! never a panic).

use crate::hist::{bucket_hi, HistogramSnapshot, BUCKETS};

/// The format tag the JSON codec emits and requires.
pub const FORMAT: &str = "otc-obs/1";

/// A typed exposition-codec error: what went wrong and the byte offset
/// where the parser stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpoError {
    /// Byte offset into the input where the error was detected.
    pub pos: usize,
    /// Human-readable description of the failure.
    pub what: String,
}

impl std::fmt::Display for ExpoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "metrics JSON error at byte {}: {}", self.pos, self.what)
    }
}

impl std::error::Error for ExpoError {}

/// The value side of one metric series.
#[allow(
    clippy::large_enum_variant,
    reason = "a HistogramSnapshot carries its 64 buckets inline by design (plain-data, \
              no indirection to chase); snapshots are built once per scrape and held in \
              a short Vec, never stored in bulk, so the per-variant padding is noise"
)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotonic counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(u64),
    /// A histogram snapshot.
    Histogram(HistogramSnapshot),
}

/// One metric series: name, sorted labels, value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricRecord {
    /// Series name (e.g. `otc_serve_drain_nanos`).
    pub name: String,
    /// Label pairs, sorted by key (the registry normalises them).
    pub labels: Vec<(String, String)>,
    /// The recorded value.
    pub value: MetricValue,
}

/// A plain-data snapshot of a whole registry, sorted by
/// `(name, labels)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Every registered series.
    pub metrics: Vec<MetricRecord>,
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u00");
                let b = c as u32;
                for nibble in [b >> 4, b & 0xF] {
                    out.push(char::from_digit(nibble, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_u64(out: &mut String, v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut v = v;
    loop {
        i = i.saturating_sub(1);
        if let Some(slot) = buf.get_mut(i) {
            *slot = b'0' + u8::try_from(v % 10).unwrap_or(0);
        }
        v /= 10;
        if v == 0 {
            break;
        }
    }
    if let Some(digits) = buf.get(i..) {
        out.push_str(&String::from_utf8_lossy(digits));
    }
}

fn push_labels_json(out: &mut String, labels: &[(String, String)]) {
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(out, k);
        out.push(':');
        push_json_string(out, v);
    }
    out.push('}');
}

impl MetricsSnapshot {
    /// Serialise to the canonical JSON form. Deterministic: a snapshot
    /// has exactly one encoding.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.metrics.len() * 96);
        out.push_str("{\"format\":\"");
        out.push_str(FORMAT);
        out.push_str("\",\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_json_string(&mut out, &m.name);
            out.push_str(",\"labels\":");
            push_labels_json(&mut out, &m.labels);
            out.push_str(",\"kind\":\"");
            match &m.value {
                MetricValue::Counter(v) => {
                    out.push_str("counter\",\"value\":");
                    push_u64(&mut out, *v);
                }
                MetricValue::Gauge(v) => {
                    out.push_str("gauge\",\"value\":");
                    push_u64(&mut out, *v);
                }
                MetricValue::Histogram(h) => {
                    out.push_str("histogram\",\"count\":");
                    push_u64(&mut out, h.count);
                    out.push_str(",\"sum\":");
                    push_u64(&mut out, h.sum);
                    out.push_str(",\"min\":");
                    push_u64(&mut out, h.min);
                    out.push_str(",\"max\":");
                    push_u64(&mut out, h.max);
                    out.push_str(",\"buckets\":[");
                    for (j, b) in h.buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        push_u64(&mut out, *b);
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Parse the canonical JSON form. Strict: anything other than an
    /// exact canonical document — truncation, reordered keys, unsorted
    /// labels, trailing bytes — is a typed [`ExpoError`].
    ///
    /// # Errors
    /// Returns [`ExpoError`] with the byte position of the first
    /// deviation from the canonical form.
    pub fn from_json(s: &str) -> Result<Self, ExpoError> {
        let mut p = Parser { s: s.as_bytes(), pos: 0 };
        p.lit("{\"format\":\"")?;
        p.lit(FORMAT)?;
        p.lit("\",\"metrics\":[")?;
        let mut metrics = Vec::new();
        if !p.eat(b']') {
            loop {
                metrics.push(p.metric()?);
                if p.eat(b',') {
                    continue;
                }
                p.lit("]")?;
                break;
            }
        }
        p.lit("}")?;
        if p.pos != p.s.len() {
            return Err(p.err("trailing bytes after the document"));
        }
        Ok(Self { metrics })
    }

    /// Render the conventional Prometheus text exposition. Emit-only.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut prev_name: Option<&str> = None;
        for m in &self.metrics {
            let kind = match &m.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            if prev_name != Some(m.name.as_str()) {
                out.push_str("# TYPE ");
                out.push_str(&m.name);
                out.push(' ');
                out.push_str(kind);
                out.push('\n');
                prev_name = Some(m.name.as_str());
            }
            match &m.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    out.push_str(&m.name);
                    push_prom_labels(&mut out, &m.labels, None);
                    out.push(' ');
                    push_u64(&mut out, *v);
                    out.push('\n');
                }
                MetricValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for (i, &c) in h.buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cum = cum.saturating_add(c);
                        out.push_str(&m.name);
                        out.push_str("_bucket");
                        let mut le = String::new();
                        push_u64(&mut le, bucket_hi(i));
                        push_prom_labels(&mut out, &m.labels, Some(&le));
                        out.push(' ');
                        push_u64(&mut out, cum);
                        out.push('\n');
                    }
                    out.push_str(&m.name);
                    out.push_str("_bucket");
                    push_prom_labels(&mut out, &m.labels, Some("+Inf"));
                    out.push(' ');
                    push_u64(&mut out, h.count);
                    out.push('\n');
                    out.push_str(&m.name);
                    out.push_str("_sum");
                    push_prom_labels(&mut out, &m.labels, None);
                    out.push(' ');
                    push_u64(&mut out, h.sum);
                    out.push('\n');
                    out.push_str(&m.name);
                    out.push_str("_count");
                    push_prom_labels(&mut out, &m.labels, None);
                    out.push(' ');
                    push_u64(&mut out, h.count);
                    out.push('\n');
                }
            }
        }
        out
    }
}

fn push_prom_labels(out: &mut String, labels: &[(String, String)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        for ch in v.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push('}');
}

/// The strict canonical-form parser. `pos` is always `<= s.len()`.
struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> ExpoError {
        ExpoError { pos: self.pos, what: what.to_owned() }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    /// Consume `lit` exactly, or fail without consuming.
    fn lit(&mut self, lit: &str) -> Result<(), ExpoError> {
        let rest = self.s.get(self.pos..).unwrap_or(&[]);
        if rest.starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    /// Consume `b` if present; report whether it was.
    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Like [`Parser::lit`] but quiet on mismatch (used for alternatives).
    fn try_lit(&mut self, lit: &str) -> bool {
        let rest = self.s.get(self.pos..).unwrap_or(&[]);
        if rest.starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    /// A canonical u64: one or more digits, no leading zeros (except
    /// `0` itself), no overflow.
    fn u64(&mut self) -> Result<u64, ExpoError> {
        let start = self.pos;
        let mut v: u64 = 0;
        while let Some(b @ b'0'..=b'9') = self.peek() {
            v = v
                .checked_mul(10)
                .and_then(|v| v.checked_add(u64::from(b - b'0')))
                .ok_or_else(|| self.err("integer overflows u64"))?;
            self.pos += 1;
        }
        let len = self.pos - start;
        if len == 0 {
            return Err(self.err("expected a digit"));
        }
        if len > 1 && self.s.get(start) == Some(&b'0') {
            return Err(ExpoError { pos: start, what: "leading zero is not canonical".to_owned() });
        }
        Ok(v)
    }

    /// A JSON string with the canonical escape set.
    fn string(&mut self) -> Result<String, ExpoError> {
        if !self.eat(b'"') {
            return Err(self.err("expected `\"`"));
        }
        let start = self.pos;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hex = self.s.get(self.pos..self.pos + 4).ok_or_else(|| {
                                ExpoError { pos: self.pos, what: "truncated \\u escape".to_owned() }
                            })?;
                            let mut code: u32 = 0;
                            for &h in hex {
                                let d = (h as char)
                                    .to_digit(16)
                                    .ok_or_else(|| self.err("bad hex in \\u escape"))?;
                                code = code * 16 + d;
                            }
                            let ch = char::from_u32(code)
                                .ok_or_else(|| self.err("bad \\u code point"))?;
                            out.push(ch);
                            self.pos += 3; // the final +1 below covers the 4th
                        }
                        _ => return Err(self.err("unsupported escape")),
                    }
                    self.pos += 1;
                }
                0x00..=0x1F => return Err(self.err("raw control byte in string")),
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // boundaries are valid).
                    let mut end = self.pos + 1;
                    while self.s.get(end).is_some_and(|&b| b & 0xC0 == 0x80) {
                        end += 1;
                    }
                    if let Some(chunk) = self.s.get(self.pos..end) {
                        out.push_str(&String::from_utf8_lossy(chunk));
                    }
                    self.pos = end;
                }
            }
            if self.pos > self.s.len() {
                return Err(ExpoError { pos: start, what: "unterminated string".to_owned() });
            }
        }
    }

    /// A canonical labels object: keys strictly ascending.
    fn labels(&mut self) -> Result<Vec<(String, String)>, ExpoError> {
        if !self.eat(b'{') {
            return Err(self.err("expected `{`"));
        }
        let mut out: Vec<(String, String)> = Vec::new();
        if self.eat(b'}') {
            return Ok(out);
        }
        loop {
            let key_pos = self.pos;
            let k = self.string()?;
            if let Some((last_k, _)) = out.last() {
                if *last_k >= k {
                    return Err(ExpoError {
                        pos: key_pos,
                        what: "label keys must be strictly ascending".to_owned(),
                    });
                }
            }
            self.lit(":")?;
            let v = self.string()?;
            out.push((k, v));
            if self.eat(b',') {
                continue;
            }
            self.lit("}")?;
            return Ok(out);
        }
    }

    fn metric(&mut self) -> Result<MetricRecord, ExpoError> {
        self.lit("{\"name\":")?;
        let name = self.string()?;
        self.lit(",\"labels\":")?;
        let labels = self.labels()?;
        self.lit(",\"kind\":\"")?;
        let value = if self.try_lit("counter\",\"value\":") {
            let v = self.u64()?;
            MetricValue::Counter(v)
        } else if self.try_lit("gauge\",\"value\":") {
            let v = self.u64()?;
            MetricValue::Gauge(v)
        } else if self.try_lit("histogram\",\"count\":") {
            let count = self.u64()?;
            self.lit(",\"sum\":")?;
            let sum = self.u64()?;
            self.lit(",\"min\":")?;
            let min = self.u64()?;
            self.lit(",\"max\":")?;
            let max = self.u64()?;
            self.lit(",\"buckets\":[")?;
            let mut buckets = [0u64; BUCKETS];
            for (j, slot) in buckets.iter_mut().enumerate() {
                if j > 0 {
                    self.lit(",")?;
                }
                *slot = self.u64()?;
            }
            self.lit("]")?;
            MetricValue::Histogram(HistogramSnapshot { buckets, count, sum, min, max })
        } else {
            return Err(self.err("expected kind counter/gauge/histogram"));
        };
        self.lit("}")?;
        Ok(MetricRecord { name, labels, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut h = HistogramSnapshot::default();
        for v in [0, 1, 5, 1000, 123_456_789] {
            let b = crate::hist::bucket_of(v);
            h.buckets[b] += 1;
            h.count += 1;
            h.sum += v;
            h.min = h.min.min(v);
            h.max = h.max.max(v);
        }
        MetricsSnapshot {
            metrics: vec![
                MetricRecord {
                    name: "otc_serve_accept_nanos".to_owned(),
                    labels: vec![],
                    value: MetricValue::Histogram(h),
                },
                MetricRecord {
                    name: "otc_serve_cells".to_owned(),
                    labels: vec![],
                    value: MetricValue::Gauge(16),
                },
                MetricRecord {
                    name: "otc_serve_requests_total".to_owned(),
                    labels: vec![("group".to_owned(), "0".to_owned())],
                    value: MetricValue::Counter(42),
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let s = sample();
        let j = s.to_json();
        let back = MetricsSnapshot::from_json(&j).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_json(), j);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let s = MetricsSnapshot::default();
        let j = s.to_json();
        assert_eq!(j, "{\"format\":\"otc-obs/1\",\"metrics\":[]}");
        assert_eq!(MetricsSnapshot::from_json(&j).unwrap(), s);
    }

    #[test]
    fn every_prefix_is_rejected() {
        let j = sample().to_json();
        for cut in 0..j.len() {
            let prefix = &j[..cut];
            assert!(
                MetricsSnapshot::from_json(prefix).is_err(),
                "prefix of length {cut} parsed: {prefix:?}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut j = sample().to_json();
        j.push(' ');
        assert!(MetricsSnapshot::from_json(&j).is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = MetricsSnapshot {
            metrics: vec![MetricRecord {
                name: "weird \"name\"\\with\nescapes\u{1}".to_owned(),
                labels: vec![("k".to_owned(), "v\t\r".to_owned())],
                value: MetricValue::Counter(0),
            }],
        };
        let back = MetricsSnapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unsorted_labels_are_rejected() {
        let good = "{\"format\":\"otc-obs/1\",\"metrics\":[{\"name\":\"x\",\"labels\":{\"b\":\"1\",\"a\":\"2\"},\"kind\":\"counter\",\"value\":1}]}";
        assert!(MetricsSnapshot::from_json(good).is_err());
    }

    #[test]
    fn leading_zero_is_rejected() {
        let j = "{\"format\":\"otc-obs/1\",\"metrics\":[{\"name\":\"x\",\"labels\":{},\"kind\":\"counter\",\"value\":01}]}";
        assert!(MetricsSnapshot::from_json(j).is_err());
    }

    #[test]
    fn prometheus_text_shape() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE otc_serve_accept_nanos histogram"));
        assert!(text.contains("otc_serve_accept_nanos_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("otc_serve_accept_nanos_count 5"));
        assert!(text.contains("otc_serve_requests_total{group=\"0\"} 42"));
        assert!(text.contains("# TYPE otc_serve_cells gauge"));
    }
}
