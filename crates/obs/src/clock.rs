//! The single audited wall-clock seam.
//!
//! This module is the only place in the workspace (outside the bench and
//! experiment crates) allowed to read wall-clock time; otc-lint rule R2
//! allowlists exactly this file. Everything that wants a duration takes a
//! [`Stamp`] and asks it how long ago it was taken — callers never see
//! `std::time::Instant` and can never feed absolute time into logic.
//!
//! Durations are reported in integer nanoseconds, saturating at
//! `u64::MAX` (≈584 years), so arithmetic downstream stays total.

use std::time::Instant;

/// An opaque point in monotonic wall-clock time.
///
/// The only thing a `Stamp` can do is report how much time has elapsed
/// since it was taken — it cannot be compared to absolute time, encoded,
/// or persisted, which keeps the wall-clock surface minimal and
/// auditable.
#[derive(Debug, Clone, Copy)]
pub struct Stamp(Instant);

/// Take a stamp of the current monotonic time.
#[must_use]
pub fn stamp() -> Stamp {
    Stamp(Instant::now())
}

impl Stamp {
    /// Nanoseconds elapsed since this stamp was taken, saturating at
    /// `u64::MAX`.
    #[must_use]
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let s = stamp();
        let a = s.elapsed_nanos();
        let b = s.elapsed_nanos();
        assert!(b >= a);
    }
}
