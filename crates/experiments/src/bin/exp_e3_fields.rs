//! E3 — Figure 2 + Observation 5.2: the field partition of the event
//! space, with `req(F) = size(F)·α` for every closed field.
//!
//! Runs TC with full instrumentation on the figure's own setting (a line
//! tree) and on random trees, then reports the field census: counts by
//! sign, size distribution, exact saturation check (violations must be 0),
//! and the open-field residue.

use std::sync::Arc;

use otc_core::tree::Tree;
use otc_experiments::{banner, fmt_f64, run_tc, Table};
use otc_util::{SplitMix64, Summary};
use otc_workloads::{random_attachment, uniform_mixed};

fn main() {
    banner(
        "E3",
        "Figure 2 / Observation 5.2 (fields of the event space)",
        "every field F closed by TC satisfies req(F) = size(F)·α exactly",
    );

    let mut table = Table::new([
        "tree",
        "alpha",
        "kONL",
        "+fields",
        "-fields",
        "mean size",
        "p99 size",
        "req==size*a violations",
        "open-field req",
    ]);
    let mut rng = SplitMix64::new(0xE3);
    let configs: Vec<(String, Arc<Tree>)> = vec![
        ("path(24) [Fig.2 setting]".into(), Arc::new(Tree::path(24))),
        ("random(64)".into(), Arc::new(random_attachment(64, &mut rng))),
        ("random(256)".into(), Arc::new(random_attachment(256, &mut rng))),
        ("kary(3,4)".into(), Arc::new(Tree::kary(3, 4))),
    ];
    for (name, tree) in &configs {
        for (alpha, k) in [(2u64, 8usize), (4, 12), (8, 24)] {
            let reqs = uniform_mixed(tree, 60_000, 0.4, &mut rng);
            let report = run_tc(tree, &reqs, alpha, k);
            let fields = report.fields.expect("instrumented");
            let sizes: Vec<f64> = fields.field_sizes.iter().map(|&s| s as f64).collect();
            let summary = Summary::of(&sizes);
            table.row([
                name.clone(),
                alpha.to_string(),
                k.to_string(),
                fields.positive_fields.to_string(),
                fields.negative_fields.to_string(),
                fmt_f64(summary.mean),
                fmt_f64(summary.p99),
                fields.saturation_violations.to_string(),
                fields.open_field_requests.to_string(),
            ]);
        }
    }
    println!("{}", table.to_markdown());
    println!(
        "Reading: the violations column must be all zeros — that is Observation 5.2\n\
         checked per field at runtime. Aggregate: total field requests always equal\n\
         α times total field size, the quantity Lemma 5.3 charges TC against."
    );
}
