//! E10 — the offline static problem (conclusion + reference \[4\]): best static cache
//! as tree sparsity, solved by an `O(n·k)` tree knapsack.
//!
//! Verifies DP = brute force on random small instances, then reports
//! runtime scaling in `n` (fixed `k`) and in `k` (fixed `n`); the log-log
//! slope in `n` should sit near 1 (linear in `n` for fixed `k` — better
//! than the conclusion's quoted `O(|T|²)` thanks to the knapsack
//! formulation; \[4\] gives near-linear algorithms for the general problem).

use std::time::Instant;

use otc_baselines::{best_static_cache, static_opt::best_static_cache_bruteforce};
use otc_experiments::{banner, fmt_f64, Table};
use otc_util::stats::linreg_slope;
use otc_util::SplitMix64;
use otc_workloads::random_attachment;

fn weights(n: usize, rng: &mut SplitMix64) -> (Vec<u64>, Vec<u64>) {
    let wpos = (0..n).map(|_| rng.next_below(50)).collect();
    let wneg = (0..n).map(|_| rng.next_below(12)).collect();
    (wpos, wneg)
}

fn main() {
    banner(
        "E10",
        "Conclusion / [4] (offline static cache = tree sparsity)",
        "the optimal static cache is computable exactly; our DP runs in O(n·k)",
    );

    // Part 1: exactness against brute force.
    let mut rng = SplitMix64::new(0xE10);
    let mut checked = 0;
    for _ in 0..200 {
        let n = 1 + rng.index(11);
        let tree = random_attachment(n, &mut rng);
        let (wpos, wneg) = weights(n, &mut rng);
        let alpha = 1 + rng.next_below(4);
        let k = rng.index(n + 1);
        let plan = best_static_cache(&tree, &wpos, &wneg, alpha, k);
        let brute = best_static_cache_bruteforce(&tree, &wpos, &wneg, alpha, k);
        assert_eq!(plan.cost, brute, "DP must equal brute force (n={n}, k={k}, α={alpha})");
        checked += 1;
    }
    println!("Exactness: DP == brute force on {checked} random instances ✓\n");

    // Part 2: scaling in n at fixed k.
    println!("### Runtime vs n (k = 256, α = 4)\n");
    let mut table = Table::new(["n", "k", "ms", "cache chosen", "cost"]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for n in [5_000usize, 10_000, 20_000, 40_000, 80_000] {
        let tree = random_attachment(n, &mut rng);
        let (wpos, wneg) = weights(n, &mut rng);
        let start = Instant::now();
        let plan = best_static_cache(&tree, &wpos, &wneg, 4, 256);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        xs.push((n as f64).ln());
        ys.push(ms.max(1e-3).ln());
        table.row([
            n.to_string(),
            "256".to_string(),
            fmt_f64(ms),
            plan.set.len().to_string(),
            plan.cost.to_string(),
        ]);
    }
    println!("{}", table.to_markdown());
    let slope = linreg_slope(&xs, &ys).unwrap_or(f64::NAN);
    println!("log-log slope in n: {} (≈ 1 ⇒ linear in n at fixed k)\n", fmt_f64(slope));

    // Part 3: scaling in k at fixed n.
    println!("### Runtime vs k (n = 40000, α = 4)\n");
    let mut table = Table::new(["n", "k", "ms", "cache chosen", "cost"]);
    let tree = random_attachment(40_000, &mut rng);
    let (wpos, wneg) = weights(40_000, &mut rng);
    for k in [32usize, 128, 512, 2048] {
        let start = Instant::now();
        let plan = best_static_cache(&tree, &wpos, &wneg, 4, k);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        table.row([
            "40000".to_string(),
            k.to_string(),
            fmt_f64(ms),
            plan.set.len().to_string(),
            plan.cost.to_string(),
        ]);
    }
    println!("{}", table.to_markdown());
    println!(
        "Reading: cost decreases (weakly) with k; runtime grows with n·k. The\n\
         criterion bench `offline_dp` repeats the timing with statistical rigour."
    );
}
