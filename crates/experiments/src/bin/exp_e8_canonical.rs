//! E8 — Appendix B: canonicalization costs at most a factor 2.
//!
//! Rule updates arrive as α-chunks of negative requests; a *canonical*
//! solution never reorganises strictly inside a chunk. The experiment
//! records TC's actual solution on churny workloads, applies the
//! postponement transform, re-evaluates both with the independent solution
//! evaluator, and reports the measured inflation — the paper proves it is
//! ≤ 2 (that factor is what the forwarding-table reduction pays).

use std::sync::Arc;

use otc_baselines::InvalidateOnUpdate;
use otc_core::policy::CachePolicy;
use otc_core::tc::{TcConfig, TcFast};
use otc_experiments::{banner, fmt_f64, Table};
use otc_sdn::{canonicalize, evaluate_solution, is_canonical, record_run};
use otc_trie::{hierarchical_table, HierarchicalConfig, RuleTree};
use otc_util::SplitMix64;

fn main() {
    banner(
        "E8",
        "Appendix B (canonical solutions / forwarding-table reduction)",
        "postponing in-chunk reorganisations costs at most a factor 2",
    );

    let mut rng = SplitMix64::new(0xE8);
    let rules = RuleTree::build(&hierarchical_table(
        HierarchicalConfig { n: 512, subdivide_p: 0.75, max_len: 28 },
        &mut rng,
    ));
    let tree = Arc::new(rules.tree().clone());

    let mut table = Table::new([
        "policy",
        "alpha",
        "update_p",
        "chunks",
        "in-chunk actions",
        "original cost",
        "canonical cost",
        "inflation",
        "<= 2",
    ]);
    for (alpha, update_p) in [(2u64, 0.1), (4, 0.1), (4, 0.3), (8, 0.3), (8, 0.5)] {
        let cfg =
            otc_sdn::FibWorkloadConfig { events: 40_000, theta: 0.9, update_p, addr_attempts: 16 };
        let events = otc_sdn::generate_events(&rules, cfg, &mut rng);
        let (reqs, chunks) = otc_sdn::to_request_stream(&rules, &events, alpha);
        let capacity = 96usize;
        // TC never acts strictly inside an α-aligned chunk (all its
        // counters advance in multiples of α here), so its inflation is
        // exactly 1 — a structural fact worth recording. The
        // invalidate-on-update policy evicts at the *first* negative of a
        // chunk, so canonicalization genuinely moves its actions.
        let policies: Vec<(&str, Box<dyn CachePolicy>)> = vec![
            ("tc", Box::new(TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, capacity)))),
            (
                "invalidate-on-update",
                Box::new(InvalidateOnUpdate::new(Arc::clone(&tree), capacity)),
            ),
        ];
        for (name, mut policy) in policies {
            let original = record_run(policy.as_mut(), &reqs);
            let in_chunk_actions: usize = chunks
                .iter()
                .map(|c| (c.start..c.end - 1).map(|t| original.actions[t].len()).sum::<usize>())
                .sum();
            let canonical = canonicalize(&original, &chunks);
            assert!(is_canonical(&canonical, &chunks));
            let c0 = evaluate_solution(&tree, &reqs, &original, alpha, capacity)
                .expect("recorded solution is valid");
            let c1 = evaluate_solution(&tree, &reqs, &canonical, alpha, capacity)
                .expect("canonical solution stays valid");
            let inflation = c1.total() as f64 / c0.total().max(1) as f64;
            table.row([
                name.to_string(),
                alpha.to_string(),
                fmt_f64(update_p),
                chunks.len().to_string(),
                in_chunk_actions.to_string(),
                c0.total().to_string(),
                c1.total().to_string(),
                fmt_f64(inflation),
                (inflation <= 2.0).to_string(),
            ]);
        }
    }
    println!("{}", table.to_markdown());
    println!(
        "Reading: inflation must never exceed 2 (Appendix B). TC sits at exactly 1\n\
         (its counters only cross saturation at chunk boundaries when all negative\n\
         mass arrives α-chunked); invalidate-on-update acts at the first negative of\n\
         every chunk, so its canonicalised solution pays the full chunk service —\n\
         the factor-2 envelope in action."
    );
}
