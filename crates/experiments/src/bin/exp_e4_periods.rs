//! E4 — Figure 3 + Lemma 5.11 bookkeeping: in/out periods per node.
//!
//! Each node's history inside a phase alternates between *out* periods
//! (non-cached, collecting positive requests) and *in* periods (cached,
//! collecting negative requests). The accounting identity `pout = pin + kP`
//! holds per phase (`kP` = cache population when the phase closes); the
//! experiment verifies it on every phase and reports how many periods are
//! "full" (≥ α/2 requests) — the quantity Lemma 5.11 feeds into OPT's
//! lower bound after request shifting.

use std::sync::Arc;

use otc_core::tree::Tree;
use otc_experiments::{banner, fmt_f64, run_tc, Table};
use otc_util::SplitMix64;
use otc_workloads::{random_attachment, uniform_mixed};

fn main() {
    banner(
        "E4",
        "Figure 3 / Lemma 5.11 (in/out periods)",
        "per phase: pout = pin + kP; in-periods carry α requests in aggregate",
    );

    let mut rng = SplitMix64::new(0xE4);
    let mut table = Table::new([
        "tree",
        "alpha",
        "kONL",
        "phases",
        "pout",
        "pin",
        "sum kP",
        "balance ok",
        "full-in %",
        "full-out %",
    ]);
    let configs: Vec<(String, Arc<Tree>)> = vec![
        ("path(16)".into(), Arc::new(Tree::path(16))),
        ("kary(2,4)".into(), Arc::new(Tree::kary(2, 4))),
        ("random(128)".into(), Arc::new(random_attachment(128, &mut rng))),
    ];
    for (name, tree) in &configs {
        for (alpha, k) in [(2u64, 6usize), (4, 10)] {
            let reqs = uniform_mixed(tree, 80_000, 0.45, &mut rng);
            let report = run_tc(tree, &reqs, alpha, k);
            let periods = report.periods.expect("instrumented");
            let mut balance_ok = true;
            let mut kp_sum = 0u64;
            for &(pout, pin, kp) in &periods.per_phase_balance {
                balance_ok &= pout == pin + kp as u64;
                kp_sum += kp as u64;
            }
            let pct = |num: u64, den: u64| {
                if den == 0 {
                    100.0
                } else {
                    100.0 * num as f64 / den as f64
                }
            };
            table.row([
                name.clone(),
                alpha.to_string(),
                k.to_string(),
                report.phases.len().to_string(),
                periods.pout.to_string(),
                periods.pin.to_string(),
                kp_sum.to_string(),
                balance_ok.to_string(),
                fmt_f64(pct(periods.full_in, periods.pin)),
                fmt_f64(pct(periods.full_out, periods.pout)),
            ]);
        }
    }
    println!("{}", table.to_markdown());
    println!(
        "Reading: 'balance ok' must be true everywhere — that is the pout = pin + kP\n\
         identity under Lemma 5.11. Full-period percentages are the *raw* (unshifted)\n\
         counts; the paper's shifting argument explains why the in-side is high while\n\
         the out-side only guarantees a 1/(2h(T)) fraction after shifting."
    );
}
