//! A1 — ablation: maximality of the fetched changeset.
//!
//! TC fetches the *maximal* saturated tree cap; the ablated variant
//! fetches the *minimal* one. Divergence requires nested caps saturating
//! simultaneously (possible — see the constructed script in
//! `otc-baselines::tc_variants`), so the experiment measures both on
//! (a) streams seeded with that construction and (b) plain random streams,
//! against exact OPT on small trees.

use std::sync::Arc;

use otc_baselines::{opt_cost, FetchScan, OverflowRule, TcVariant};
use otc_core::policy::CachePolicy;
use otc_core::request::Request;
use otc_core::tree::{NodeId, Tree};
use otc_experiments::{banner, fmt_f64, ratio, Table};
use otc_util::SplitMix64;
use otc_workloads::uniform_mixed;

/// The divergence gadget stream: park counts so that P(leaf) and P(root)
/// saturate at the same request, repeated with churn in between.
fn gadget_stream(repeats: usize, alpha: u64) -> (Arc<Tree>, Vec<Request>) {
    let tree = Arc::new(Tree::star(2));
    let mut reqs = Vec::new();
    for _ in 0..repeats {
        reqs.push(Request::pos(NodeId(2)));
        for _ in 0..(2 * alpha - 1) {
            reqs.push(Request::pos(NodeId(0)));
        }
        reqs.push(Request::pos(NodeId(1)));
        for _ in 0..alpha - 1 {
            reqs.push(Request::pos(NodeId(1)));
        }
        // Churn everything out so the pattern can repeat.
        for node in [0u32, 1, 2] {
            for _ in 0..2 * alpha {
                reqs.push(Request::neg(NodeId(node)));
            }
        }
    }
    (tree, reqs)
}

fn cost_of(tree: &Tree, policy: &mut dyn CachePolicy, reqs: &[Request], alpha: u64) -> u64 {
    otc_experiments::bare_cost(tree, policy, reqs, alpha)
}

fn main() {
    banner(
        "A1",
        "ablation: maximality of the fetched cap (design choice of Section 4)",
        "the maximal fetch absorbs more request mass per α spent",
    );

    let mut table =
        Table::new(["workload", "alpha", "k", "tc (maximal)", "minimal fetch", "min/max ratio"]);

    // (a) the divergence gadget.
    for alpha in [2u64, 4, 8] {
        let (tree, reqs) = gadget_stream(60, alpha);
        let k = 3;
        let mut maximal =
            TcVariant::new(Arc::clone(&tree), alpha, k, FetchScan::TopDown, OverflowRule::Flush);
        let mut minimal =
            TcVariant::new(Arc::clone(&tree), alpha, k, FetchScan::BottomUp, OverflowRule::Flush);
        let c_max = cost_of(&tree, &mut maximal, &reqs, alpha);
        let c_min = cost_of(&tree, &mut minimal, &reqs, alpha);
        table.row([
            "divergence gadget".to_string(),
            alpha.to_string(),
            k.to_string(),
            c_max.to_string(),
            c_min.to_string(),
            fmt_f64(ratio(c_min, c_max)),
        ]);
    }

    // (b) random streams on small trees, with exact OPT as reference.
    let mut rng = SplitMix64::new(0xA1);
    let tree = Arc::new(Tree::kary(2, 3));
    let mut table_rand = Table::new([
        "seeds",
        "alpha",
        "k",
        "mean tc/OPT (maximal)",
        "mean min-fetch/OPT",
        "worse by",
    ]);
    for (alpha, k) in [(2u64, 4usize), (4, 5)] {
        let mut acc_max = 0.0;
        let mut acc_min = 0.0;
        let seeds = 20;
        for _ in 0..seeds {
            let reqs = uniform_mixed(&tree, 500, 0.35, &mut rng);
            let opt = opt_cost(&tree, &reqs, alpha, k);
            let mut maximal = TcVariant::new(
                Arc::clone(&tree),
                alpha,
                k,
                FetchScan::TopDown,
                OverflowRule::Flush,
            );
            let mut minimal = TcVariant::new(
                Arc::clone(&tree),
                alpha,
                k,
                FetchScan::BottomUp,
                OverflowRule::Flush,
            );
            acc_max += ratio(cost_of(&tree, &mut maximal, &reqs, alpha), opt);
            acc_min += ratio(cost_of(&tree, &mut minimal, &reqs, alpha), opt);
        }
        table_rand.row([
            seeds.to_string(),
            alpha.to_string(),
            k.to_string(),
            fmt_f64(acc_max / f64::from(seeds)),
            fmt_f64(acc_min / f64::from(seeds)),
            fmt_f64(acc_min / acc_max),
        ]);
    }
    println!("{}", table.to_markdown());
    println!("{}", table_rand.to_markdown());
    println!(
        "Reading: the gadget proves the two scans genuinely diverge (simultaneous\n\
         saturation of nested caps is constructible). On it the *minimal* fetch is\n\
         even cheaper — the maximal fetch buys the whole tree just before churn\n\
         destroys it. On random streams the variants almost never diverge. The\n\
         lesson matches the theory: maximality is not a pointwise cost optimisation\n\
         but what makes Lemma 5.12's bound on the open field work — after a maximal\n\
         fetch *nothing* saturated survives (Lemma 5.1(3)), which is what caps\n\
         req(F∞) against OPT. The competitive guarantee needs it; the average case\n\
         does not reward it."
    );
}
