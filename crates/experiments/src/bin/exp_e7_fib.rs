//! E7 — Section 2: the FIB-caching application end to end.
//!
//! Synthetic routing table (hierarchical generator → real dependency
//! depth), Zipf-popular packets, BGP-style update churn. Sweeps the router
//! cache size and compares TC against dependent-set LRU/FIFO, the
//! bypass-everything floor, and the offline static-optimal cache. Two
//! regimes: churn-free (prior work's home turf) and churny (where
//! dependency-respecting reactive caching bleeds α per update).

use std::sync::Arc;

use otc_baselines::{best_static_cache, BypassAll, DependentSetPolicy, InvalidateOnUpdate};
use otc_core::policy::CachePolicy;
use otc_core::request::Sign;
use otc_core::tc::{TcConfig, TcFast};
use otc_experiments::{banner, fmt_f64, Table};
use otc_sdn::{generate_events, run_fib, FibWorkloadConfig};
use otc_trie::{hierarchical_table, HierarchicalConfig, RuleTree};
use otc_util::{parallel_map, SplitMix64};

struct Cell {
    policy: &'static str,
    capacity: usize,
    update_p: f64,
}

fn main() {
    banner(
        "E7",
        "Section 2 (FIB caching on a router with an SDN controller)",
        "dependency-aware caching cuts controller load; TC additionally survives churn",
    );

    // Smoke mode (CI): same pipeline, tiny workload — exercises every
    // policy and the sharded engine section without the full sweep.
    let smoke = std::env::var_os("OTC_SMOKE").is_some();

    let mut rng = SplitMix64::new(0xE7);
    let n_rules = if smoke { 512 } else { 4096usize };
    let rules = Arc::new(RuleTree::build(&hierarchical_table(
        HierarchicalConfig { n: n_rules, subdivide_p: 0.7, max_len: 28 },
        &mut rng,
    )));
    let tree = Arc::new(rules.tree().clone());
    println!(
        "Table: {} rules, dependency-tree height {}, max degree {}\n",
        rules.len(),
        tree.height(),
        tree.max_degree()
    );
    let alpha = 4u64;
    let events_n = if smoke { 6_000 } else { 120_000usize };
    let capacities: &[usize] = if smoke { &[64, 256] } else { &[64, 128, 256, 512, 1024] };

    let mut cells: Vec<Cell> = Vec::new();
    for &update_p in &[0.0f64, 0.03] {
        for &capacity in capacities {
            for policy in
                ["tc", "subtree-lru", "subtree-fifo", "invalidate", "bypass-all", "static-opt"]
            {
                cells.push(Cell { policy, capacity, update_p });
            }
        }
    }

    let results = parallel_map(cells, |cell| {
        // Same workload seed per (capacity, regime) cell so policies are
        // compared on identical event streams.
        let mut rng = SplitMix64::new(0x5D5EED ^ ((cell.update_p * 1000.0) as u64).rotate_left(13));
        let cfg = FibWorkloadConfig {
            events: events_n,
            theta: 1.0,
            update_p: cell.update_p,
            addr_attempts: 24,
        };
        let events = generate_events(&rules, cfg, &mut rng);
        match cell.policy {
            "static-opt" => {
                // Oracle: weight nodes by the realised request stream.
                let (reqs, _) = otc_sdn::to_request_stream(&rules, &events, alpha);
                let mut wpos = vec![0u64; tree.len()];
                let mut wneg = vec![0u64; tree.len()];
                for r in &reqs {
                    match r.sign {
                        Sign::Positive => wpos[r.node.index()] += 1,
                        Sign::Negative => wneg[r.node.index()] += 1,
                    }
                }
                let plan = best_static_cache(&tree, &wpos, &wneg, alpha, cell.capacity);
                let packets =
                    events.iter().filter(|e| matches!(e, otc_sdn::FibEvent::Packet(_))).count()
                        as u64;
                let mut in_set = vec![false; tree.len()];
                for &v in &plan.set {
                    in_set[v.index()] = true;
                }
                let misses: u64 =
                    reqs.iter().filter(|r| r.is_positive() && !in_set[r.node.index()]).count()
                        as u64;
                (
                    cell.policy,
                    cell.capacity,
                    cell.update_p,
                    misses as f64 / packets as f64,
                    plan.cost,
                )
            }
            name => {
                let mut policy: Box<dyn CachePolicy> = match name {
                    "tc" => Box::new(TcFast::new(
                        Arc::clone(&tree),
                        TcConfig::new(alpha, cell.capacity),
                    )),
                    "subtree-lru" => {
                        Box::new(DependentSetPolicy::lru(Arc::clone(&tree), cell.capacity))
                    }
                    "subtree-fifo" => {
                        Box::new(DependentSetPolicy::fifo(Arc::clone(&tree), cell.capacity))
                    }
                    "invalidate" => {
                        Box::new(InvalidateOnUpdate::new(Arc::clone(&tree), cell.capacity))
                    }
                    "bypass-all" => Box::new(BypassAll::new(&tree, cell.capacity)),
                    other => unreachable!("unknown policy {other}"),
                };
                let report = run_fib(&rules, policy.as_mut(), &events, alpha);
                (cell.policy, cell.capacity, cell.update_p, report.miss_rate(), report.total_cost())
            }
        }
    });

    for &update_p in &[0.0f64, 0.03] {
        println!(
            "### {} regime (update probability per event = {update_p})\n",
            if update_p == 0.0 { "Churn-free" } else { "Churny" }
        );
        let mut table =
            Table::new(["cache size", "policy", "miss rate", "total cost", "vs bypass-all"]);
        for &capacity in capacities {
            let bypass_cost = results
                .iter()
                .find(|r| r.0 == "bypass-all" && r.1 == capacity && r.2 == update_p)
                .map_or(0, |r| r.4);
            for policy in
                ["tc", "subtree-lru", "subtree-fifo", "invalidate", "static-opt", "bypass-all"]
            {
                if let Some(r) =
                    results.iter().find(|r| r.0 == policy && r.1 == capacity && r.2 == update_p)
                {
                    table.row([
                        capacity.to_string(),
                        policy.to_string(),
                        fmt_f64(r.3),
                        r.4.to_string(),
                        fmt_f64(r.4 as f64 / bypass_cost.max(1) as f64),
                    ]);
                }
            }
        }
        println!("{}", table.to_markdown());
    }
    println!(
        "Reading: miss rates fall with cache size for every caching policy (the Zipf\n\
         head fits), but *total cost* separates them sharply. Eager dependent-set\n\
         caching (LRU/FIFO/invalidate) loses to bypass-all by an order of magnitude:\n\
         every miss on a rule with descendants buys the whole dependent set at α per\n\
         node, mostly for rules never reused enough to amortise it. TC's rent-or-buy\n\
         counters only buy what has already paid for itself, landing between the\n\
         static oracle and bypass-all — and its edge widens in the churny regime,\n\
         where cached-rule updates cost the reactive policies α each while TC's\n\
         negative counters evict the churners. This cost asymmetry is exactly the\n\
         trade-off the paper's competitive analysis formalises."
    );

    // --- The sharded pipeline: the same system scaled out. The rule trie
    // splits at the default route into independent subtrie shards, each
    // with its own TC and a slice of the TCAM; shards execute in parallel.
    println!("\n### Sharded pipeline (`run_fib_sharded`, one TC per subtrie shard)\n");
    let total_capacity = 256usize;
    let mut events_rng = SplitMix64::new(0x5D5EED ^ 30u64.rotate_left(13));
    let events = generate_events(
        &rules,
        FibWorkloadConfig { events: events_n, theta: 1.0, update_p: 0.03, addr_attempts: 24 },
        &mut events_rng,
    );
    let mut table = Table::new(["shards", "miss rate", "service", "reorg", "total cost"]);
    // The 4-shard run is additionally *observed*: windowed per-shard
    // telemetry, recorded to TIMELINE_e7.json for downstream tooling
    // (`bench_engine` embeds its summary next to the throughput numbers).
    let window = if smoke { 1024usize } else { 8192 };
    let mut recorded_timeline = None;
    for shards in [1usize, 2, 4, 8] {
        let capacity = (total_capacity / shards).max(1);
        let factory = move |shard_tree: Arc<otc_core::tree::Tree>,
                            _s: otc_core::forest::ShardId| {
            Box::new(TcFast::new(shard_tree, TcConfig::new(alpha, capacity)))
                as Box<dyn CachePolicy>
        };
        let cfg = otc_sim::EngineConfig::bare(alpha)
            .threads(shards)
            .audit_every(window)
            .telemetry(shards == 4);
        let sharded = otc_sdn::run_fib_sharded_cfg(&rules, &factory, &events, cfg, shards);
        if shards == 4 {
            recorded_timeline = Some(sharded.timeline.clone());
        }
        table.row([
            sharded.per_shard.len().to_string(),
            fmt_f64(sharded.total.miss_rate()),
            sharded.total.service_cost.to_string(),
            sharded.total.reorg_cost.to_string(),
            sharded.total.total_cost().to_string(),
        ]);
    }
    println!("{}", table.to_markdown());
    let timeline = recorded_timeline.expect("the 4-shard run records a timeline");
    std::fs::write("TIMELINE_e7.json", timeline.to_json()).expect("write TIMELINE_e7.json");
    println!(
        "\nRecorded TIMELINE_e7.json: {} windows of {} rounds across {} shards\n\
         (per-window cost breakdown, occupancy, action-buffer high-water).",
        timeline.windows.len(),
        timeline.window_rounds,
        timeline.shards
    );
    println!(
        "Reading: each row is a different caching *system* (independent per-shard\n\
         TCs over a partitioned TCAM), so costs shift slightly with the partition —\n\
         but every row is deterministic and thread-count-independent, and the\n\
         per-shard reports equal independent single-shard runs exactly (pinned by\n\
         the differential tests). Throughput scaling across shard counts is\n\
         recorded in BENCH_engine.json by `cargo run -p otc-bench --bin\n\
         bench_engine`."
    );
}
