//! E1 — Theorem 5.15: TC is `O(h(T) · R)`-competitive,
//! `R = kONL/(kONL − kOPT + 1)`.
//!
//! Part A sweeps tree *height* at (nearly) fixed size and measures the
//! worst observed `TC/OPT` against exact OPT (subforest-state DP) on
//! random mixed request streams. Part B sweeps the *augmentation* `R` by
//! varying `kOPT` at fixed `kONL`. The paper proves an upper bound, so the
//! check is: every measured ratio stays below a small multiple of
//! `h(T)·R`, and the measured worst ratios grow no faster than the bound.

use std::sync::Arc;

use otc_baselines::opt_cost;
use otc_core::tree::Tree;
use otc_experiments::{banner, fmt_f64, ratio, tc_total, Table};
use otc_util::{parallel_map, SplitMix64};
use otc_workloads::uniform_mixed;

fn measured_ratios(
    tree: &Arc<Tree>,
    alpha: u64,
    k_onl: usize,
    k_opt: usize,
    seeds: u64,
    len: usize,
) -> (f64, f64) {
    let cells: Vec<u64> = (0..seeds).collect();
    let ratios = parallel_map(cells, |&seed| {
        let mut rng = SplitMix64::new(0xE1_0000 + seed);
        let reqs = uniform_mixed(tree, len, 0.35, &mut rng);
        let tc = tc_total(tree, &reqs, alpha, k_onl);
        let opt = opt_cost(tree, &reqs, alpha, k_opt);
        ratio(tc, opt)
    });
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let max = ratios.iter().copied().fold(0.0f64, f64::max);
    (mean, max)
}

fn main() {
    banner(
        "E1",
        "Theorem 5.15 (competitive upper bound)",
        "TC(I) <= O(h(T) * kONL/(kONL-kOPT+1)) * OPT(I) + const",
    );

    // Part A: height sweep at comparable size (n in 7..=10), kONL = kOPT.
    println!("### Part A — ratio vs tree height (kONL = kOPT = 4, exact OPT)\n");
    let shapes: Vec<(&str, Tree)> = vec![
        ("star(8)", Tree::star(8)),
        ("kary(2,3)", Tree::kary(2, 3)),
        ("caterpillar(4,1)", Tree::caterpillar(4, 1)),
        ("broom(6,3)", otc_workloads::broom(6, 3)),
        ("path(9)", Tree::path(9)),
    ];
    let mut table =
        Table::new(["tree", "n", "h", "alpha", "mean TC/OPT", "max TC/OPT", "bound h*R", "ok"]);
    let (k_onl, k_opt) = (4usize, 4usize);
    let r_aug = k_onl as f64 / (k_onl - k_opt + 1) as f64;
    for (name, tree) in shapes {
        let tree = Arc::new(tree);
        for alpha in [2u64, 4] {
            let (mean, max) = measured_ratios(&tree, alpha, k_onl, k_opt, 24, 600);
            let h = f64::from(tree.height());
            let bound = h * r_aug;
            // "ok" means the measured worst case respects the bound with a
            // generous universal constant (the theorem's O(·) hides one).
            let ok = max <= 4.0 * bound + 4.0;
            table.row([
                name.to_string(),
                tree.len().to_string(),
                tree.height().to_string(),
                alpha.to_string(),
                fmt_f64(mean),
                fmt_f64(max),
                fmt_f64(bound),
                ok.to_string(),
            ]);
        }
    }
    println!("{}", table.to_markdown());

    // Part B: augmentation sweep on a fixed tree.
    println!("### Part B — ratio vs augmentation R (kary(2,3), kONL = 5)\n");
    let tree = Arc::new(Tree::kary(2, 3));
    let mut table = Table::new(["kOPT", "R", "alpha", "mean TC/OPT", "max TC/OPT", "bound h*R"]);
    for k_opt in 1..=5usize {
        let k_onl = 5usize;
        let r_aug = k_onl as f64 / (k_onl - k_opt + 1) as f64;
        for alpha in [2u64, 4] {
            let (mean, max) = measured_ratios(&tree, alpha, k_onl, k_opt, 24, 600);
            table.row([
                k_opt.to_string(),
                fmt_f64(r_aug),
                alpha.to_string(),
                fmt_f64(mean),
                fmt_f64(max),
                fmt_f64(f64::from(tree.height()) * r_aug),
            ]);
        }
    }
    println!("{}", table.to_markdown());
    println!(
        "Reading: ratios must stay under a small multiple of h*R and grow with R; \
         OPT is exact (subforest DP), so any bound violation would falsify the theorem."
    );
}
