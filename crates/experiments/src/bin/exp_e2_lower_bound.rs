//! E2 — Theorem C.1: every deterministic algorithm is
//! `Ω(kONL/(kONL − kOPT + 1))`-competitive; the adversarial construction
//! realises this against TC.
//!
//! A star with `kONL + 1` leaves plays paging: the adaptive adversary
//! always requests (α times) a leaf missing from TC's cache. TC's cost is
//! measured exactly; OPT is *upper-bounded* by a feasible offline solution
//! (LFD replay / bypass-all), which is the sound direction for certifying
//! a ratio **lower** bound. The series: measured ratio vs `kONL`, expected
//! to grow linearly in the non-augmented case (`R = kONL`) and to flatten
//! under augmentation (`kOPT = kONL/2 ⇒ R ≈ 2`).

use std::sync::Arc;

use otc_baselines::offline_star_upper_bound;
use otc_core::tc::{TcConfig, TcFast};
use otc_core::tree::Tree;
use otc_experiments::{banner, fmt_f64, Table};
use otc_workloads::drive_paging_adversary;

fn run_cell(k_onl: usize, k_opt: usize, alpha: u64, rounds: usize) -> (u64, u64, f64) {
    let tree = Arc::new(Tree::star(k_onl + 1));
    let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, k_onl));
    let run = drive_paging_adversary(&mut tc, &tree, alpha, rounds);
    let tc_cost = run.online_service + alpha * run.online_touched;
    let opt_ub = offline_star_upper_bound(&run.trace, alpha, k_opt);
    let measured = tc_cost as f64 / opt_ub as f64;
    (tc_cost, opt_ub, measured)
}

fn main() {
    banner(
        "E2",
        "Theorem C.1 / Appendix C (lower bound Ω(R))",
        "against the paging adversary the ratio grows as Ω(kONL/(kONL-kOPT+1))",
    );
    let alpha = 4u64;

    println!("### Non-augmented: kOPT = kONL (R = kONL)\n");
    let mut table =
        Table::new(["kONL", "rounds", "TC cost", "OPT upper bound", "ratio >=", "ratio/R"]);
    for k in [2usize, 4, 8, 16, 32] {
        let rounds = 60 * k;
        let (tc_cost, opt_ub, measured) = run_cell(k, k, alpha, rounds);
        table.row([
            k.to_string(),
            rounds.to_string(),
            tc_cost.to_string(),
            opt_ub.to_string(),
            fmt_f64(measured),
            fmt_f64(measured / k as f64),
        ]);
    }
    println!("{}", table.to_markdown());
    println!(
        "Reading: 'ratio >=' certifies TC/OPT (OPT is upper-bounded by a feasible\n\
         offline solution). ratio/R should hover around a constant — linear growth in R.\n"
    );

    println!("### Augmented: kOPT = kONL/2 (R ≈ 2 — the ratio must flatten)\n");
    let mut table =
        Table::new(["kONL", "kOPT", "R", "TC cost", "OPT upper bound", "ratio >=", "ratio/R"]);
    for k in [4usize, 8, 16, 32] {
        let k_opt = k / 2;
        let r_aug = k as f64 / (k - k_opt + 1) as f64;
        let rounds = 60 * k;
        let (tc_cost, opt_ub, measured) = run_cell(k, k_opt, alpha, rounds);
        table.row([
            k.to_string(),
            k_opt.to_string(),
            fmt_f64(r_aug),
            tc_cost.to_string(),
            opt_ub.to_string(),
            fmt_f64(measured),
            fmt_f64(measured / r_aug),
        ]);
    }
    println!("{}", table.to_markdown());
    println!(
        "Reading: with kOPT = kONL/2 the augmentation caps R near 2; the measured\n\
         ratio should stop growing with kONL — resource augmentation tames the adversary."
    );
}
