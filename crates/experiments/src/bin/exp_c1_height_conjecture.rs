//! C1 — probing the paper's open conjecture (Section 7): *"we conjecture
//! that the true competitive ratio does not depend on the tree height."*
//!
//! For each height `h` we fix a path of `h` nodes (the height-extremal
//! shape; on a path exact OPT is `O(rounds·k)` via the suffix-state DP in
//! `otc_baselines::opt_path`) and run a randomised adversarial search
//! maximising measured `TC/OPT`. The search certifies *lower* bounds on
//! the worst-case ratio at each height: if the found ratios stay flat as
//! `h` grows, the experiment is consistent with the conjecture; if they
//! grew like `h`, they would refute it (and support the analysis being
//! tight).

use std::sync::Arc;

use otc_baselines::opt_cost_path;
use otc_core::request::Request;
use otc_core::tc::{TcConfig, TcFast};
use otc_core::tree::Tree;
use otc_experiments::{banner, fmt_f64, Table};
use otc_util::{parallel_map, SplitMix64};
use otc_workloads::adversarial_search;

fn ratio_objective(tree: &Arc<Tree>, alpha: u64, k: usize) -> impl FnMut(&[Request]) -> f64 {
    let tree = Arc::clone(tree);
    move |reqs: &[Request]| {
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, k));
        let tc_cost = otc_experiments::bare_cost(&tree, &mut tc, reqs, alpha);
        let opt = opt_cost_path(&tree, reqs, alpha, k);
        if opt == 0 {
            return 1.0; // degenerate sequence, uninteresting
        }
        tc_cost as f64 / opt as f64
    }
}

fn main() {
    banner(
        "C1",
        "Section 7 conjecture (does the ratio really depend on h?)",
        "searched worst-case TC/OPT per height; flat series = consistent with the conjecture",
    );

    let alpha = 2u64;
    let k = 3usize;
    let seq_len = 260usize;
    let iters = 1200u32;
    let restarts: Vec<u64> = (0..8).collect();

    let mut table =
        Table::new(["tree", "n", "h", "best searched TC/OPT", "h*R reference", "ratio/h"]);
    for h in [3usize, 5, 7, 9, 13, 17, 25, 33] {
        let tree = Arc::new(Tree::path(h));
        // Independent restarts in parallel; keep the best.
        let best = parallel_map(restarts.clone(), |&seed| {
            let mut rng = SplitMix64::new(0xC1_0000 + seed + h as u64 * 101);
            let out = adversarial_search(
                &tree,
                seq_len,
                iters,
                &mut rng,
                ratio_objective(&tree, alpha, k),
            );
            out.ratio
        })
        .into_iter()
        .fold(0.0f64, f64::max);
        table.row([
            format!("path({h})"),
            h.to_string(),
            h.to_string(),
            fmt_f64(best),
            fmt_f64(h as f64 * k as f64),
            fmt_f64(best / h as f64),
        ]);
    }
    println!("{}", table.to_markdown());
    println!(
        "Reading: a randomised search certifies lower bounds on the worst-case\n\
         ratio per height. If 'best searched TC/OPT' stays roughly flat while the\n\
         h·R reference grows linearly, the data is consistent with the paper's\n\
         conjecture that the height factor in Theorem 5.15 is an artifact of the\n\
         analysis. (A heuristic probe, not a proof in either direction: the search\n\
         explores a tiny corner of input space.)"
    );
}
