//! A2 — ablation: phase restarts (the flush-on-overflow rule).
//!
//! TC's competitive proof leans on phases: when a saturated fetch would
//! overflow the cache, TC flushes *everything* and starts over. The
//! ablated variant cancels the fetch and keeps the (stale) cache. Under a
//! shifting working set with a tight cache, the no-flush variant strands
//! old content: it keeps paying misses on the new hot set because the new
//! set's fetches keep overflowing. The experiment measures both across
//! drift epochs.

use std::sync::Arc;

use otc_baselines::{FetchScan, OverflowRule, TcVariant};
use otc_core::policy::CachePolicy;
use otc_core::request::Request;
use otc_core::tree::Tree;
use otc_experiments::{banner, fmt_f64, ratio, Table};
use otc_util::SplitMix64;
use otc_workloads::{random_attachment, shifting_zipf};

fn cost_of(tree: &Tree, policy: &mut dyn CachePolicy, reqs: &[Request], alpha: u64) -> u64 {
    otc_experiments::bare_cost(tree, policy, reqs, alpha)
}

fn main() {
    banner(
        "A2",
        "ablation: phase restart on overflow (Section 4's flush rule)",
        "without flushes a stale cache can be stranded across working-set shifts",
    );

    let mut rng = SplitMix64::new(0xA2);

    // Regime 1: tight cache, mixed drift — both variants thrash; flushes
    // are not expected to win here (recorded honestly).
    println!("### Tight cache, moderate skew (hot set larger than the cache)\n");
    let tree = Arc::new(random_attachment(200, &mut rng));
    let mut table = Table::new(["alpha", "k", "epoch", "tc (flush)", "no-flush", "no-flush/tc"]);
    for (alpha, k, epoch) in
        [(2u64, 6usize, 4_000usize), (2, 10, 4_000), (4, 6, 8_000), (4, 10, 8_000), (8, 16, 8_000)]
    {
        let reqs = shifting_zipf(&tree, 80_000, 1.3, epoch, &mut rng);
        let mut flush =
            TcVariant::new(Arc::clone(&tree), alpha, k, FetchScan::TopDown, OverflowRule::Flush);
        let mut noflush =
            TcVariant::new(Arc::clone(&tree), alpha, k, FetchScan::TopDown, OverflowRule::Ignore);
        let c_flush = cost_of(&tree, &mut flush, &reqs, alpha);
        let c_noflush = cost_of(&tree, &mut noflush, &reqs, alpha);
        table.row([
            alpha.to_string(),
            k.to_string(),
            epoch.to_string(),
            c_flush.to_string(),
            c_noflush.to_string(),
            fmt_f64(ratio(c_noflush, c_flush)),
        ]);
    }
    println!("{}", table.to_markdown());

    // Regime 2: the stranding pathology, deterministic. A star with 2k
    // leaves; epochs alternate between round-robin hammering of leaf set
    // A = {1..k} and set B = {k+1..2k}. The input is positive-only, so the
    // no-flush variant can never evict: once set A fills the cache, every
    // set-B fetch overflows, its counters are reset, and *every* set-B
    // request pays — for the entire epoch. TC flushes once per epoch
    // switch and re-converges at O(k·α) cost.
    println!("### Stranding: alternating working sets, positive-only (deterministic)\n");
    let mut table = Table::new([
        "alpha",
        "k",
        "epoch len",
        "tc (flush)",
        "no-flush",
        "no-flush/tc",
        "stranded",
    ]);
    for (alpha, k, epoch_len, epochs) in [
        (2u64, 8usize, 2_000usize, 8usize),
        (4, 8, 4_000, 8),
        (4, 16, 8_000, 6),
        (8, 16, 16_000, 6),
    ] {
        let tree = Arc::new(Tree::star(2 * k));
        let mut reqs = Vec::with_capacity(epoch_len * epochs);
        for e in 0..epochs {
            let base = if e % 2 == 0 { 1 } else { k + 1 };
            for round in 0..epoch_len {
                reqs.push(Request::pos(otc_core::tree::NodeId((base + round % k) as u32)));
            }
        }
        let mut flush =
            TcVariant::new(Arc::clone(&tree), alpha, k, FetchScan::TopDown, OverflowRule::Flush);
        let mut noflush =
            TcVariant::new(Arc::clone(&tree), alpha, k, FetchScan::TopDown, OverflowRule::Ignore);
        let c_flush = cost_of(&tree, &mut flush, &reqs, alpha);
        let c_noflush = cost_of(&tree, &mut noflush, &reqs, alpha);
        let r = ratio(c_noflush, c_flush);
        table.row([
            alpha.to_string(),
            k.to_string(),
            epoch_len.to_string(),
            c_flush.to_string(),
            c_noflush.to_string(),
            fmt_f64(r),
            (r > 2.0).to_string(),
        ]);
    }
    println!("{}", table.to_markdown());
    println!(
        "Reading: under thrashing drift (regime 1) flushes cost a few percent —\n\
         phases are an analysis device, not an average-case win. But without them\n\
         (regime 2) a full cache of stale content can be stranded *forever* on\n\
         positive-only inputs: the no-flush variant's cost blows up by the drift\n\
         period. The flush rule is what bounds every phase independently in the\n\
         competitive proof — and what prevents unbounded stranding."
    );
}
