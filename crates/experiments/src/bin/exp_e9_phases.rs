//! E9 — phase anatomy: Lemma 5.3's cost decomposition and Lemma 5.12/5.14
//! bookkeeping.
//!
//! Lemma 5.3 bounds a phase's cost by `2α·size(F) + req(F∞) + kP·α`; with
//! the simulator's exact instrumentation the bound is in fact an identity
//! per phase (service inside fields = α·size(F), reorganisation =
//! α·size(F) + flush `α·kP`, service outside fields = req(F∞)). The
//! experiment verifies the identity on every phase and reports the
//! distribution of `kP` and of the open-field residue against the
//! Lemma 5.12 envelope `2·kONL·α + 2·OPT(P)` (we print the α-term, which
//! is the OPT-free part of the bound).

use std::sync::Arc;

use otc_core::tree::Tree;
use otc_experiments::{banner, fmt_f64, run_tc, Table};
use otc_util::{SplitMix64, Summary};
use otc_workloads::{random_attachment, shifting_zipf, uniform_mixed};

fn main() {
    banner(
        "E9",
        "Lemma 5.3 / 5.12 / 5.14 (phase anatomy)",
        "TC(P) = 2α·size(F) + req(F∞) + kP·α per finished phase",
    );

    let mut rng = SplitMix64::new(0xE9);
    let mut table = Table::new([
        "workload",
        "alpha",
        "kONL",
        "phases",
        "identity ok",
        "mean kP",
        "max kP",
        "mean req(F_inf)",
        "2*kONL*alpha",
    ]);
    let tree: Arc<Tree> = Arc::new(random_attachment(96, &mut rng));
    for (workload, alpha, k) in [
        ("uniform-mixed", 2u64, 6usize),
        ("uniform-mixed", 4, 10),
        ("uniform-mixed", 8, 16),
        ("shifting-zipf", 4, 10),
        ("shifting-zipf", 4, 20),
    ] {
        let reqs = match workload {
            "uniform-mixed" => uniform_mixed(&tree, 120_000, 0.4, &mut rng),
            _ => shifting_zipf(&tree, 120_000, 1.1, 8_000, &mut rng),
        };
        let report = run_tc(&tree, &reqs, alpha, k);
        let mut identity_ok = true;
        let mut kps = Vec::new();
        let mut opens = Vec::new();
        for phase in &report.phases {
            let flush_term = if phase.finished { phase.k_p as u64 * alpha } else { 0 };
            let predicted = 2 * alpha * phase.fields_size + phase.open_requests + flush_term;
            identity_ok &= phase.cost.total() == predicted;
            kps.push(phase.k_p as f64);
            opens.push(phase.open_requests as f64);
        }
        let kp_summary = Summary::of(&kps);
        let open_summary = Summary::of(&opens);
        table.row([
            workload.to_string(),
            alpha.to_string(),
            k.to_string(),
            report.phases.len().to_string(),
            identity_ok.to_string(),
            fmt_f64(kp_summary.mean),
            fmt_f64(kp_summary.max),
            fmt_f64(open_summary.mean),
            (2 * k as u64 * alpha).to_string(),
        ]);
    }
    println!("{}", table.to_markdown());
    println!(
        "Reading: 'identity ok' must hold on every phase — it is Lemma 5.3 with\n\
         exact bookkeeping instead of inequalities. kP stays ≤ kONL by construction\n\
         (the simulator measures the pre-flush population; the paper's kP also counts\n\
         the aborted fetch, hence its kP ≥ kONL+1 for finished phases). The open-field\n\
         residue is compared against the OPT-free part of Lemma 5.12's envelope."
    );
}
