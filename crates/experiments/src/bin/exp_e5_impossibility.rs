//! E5 — Figure 4 / Appendix D: the positive field whose requests cannot be
//! spread α-per-node by downward shifting.
//!
//! Drives TC through the gadget's scripted chronology, verifies every
//! milestone (the two evictions and the final full fetch land exactly
//! where the construction says), then dissects the final positive field:
//! which nodes hold the request mass, and how much of it arrived while
//! `T2` was part of the field (only those requests could ever be shifted
//! into `T2`). The punchline — `Ω(α)` requests reach at most half the
//! nodes — is printed as a per-`s` series.

use std::sync::Arc;

use otc_core::policy::{Action, CachePolicy};
use otc_core::tc::{TcConfig, TcFast};
use otc_experiments::{banner, fmt_f64, Table};
use otc_workloads::gadget::ExpectedAction;
use otc_workloads::Fig4Gadget;

fn main() {
    banner(
        "E5",
        "Figure 4 / Appendix D (impossibility of exact positive shifting)",
        "in the final field, only ~half the nodes can receive α/2 requests by legal shifts",
    );

    let mut table = Table::new([
        "s",
        "ell",
        "alpha",
        "milestones ok",
        "field size",
        "req at r",
        "req at r1",
        "req in T2",
        "shiftable into T2",
        "nodes reachable w/ alpha/2",
        "fraction",
    ]);
    for (s, ell, alpha) in [(4usize, 1usize, 8u64), (8, 3, 8), (16, 4, 16), (32, 8, 16)] {
        let g = Fig4Gadget::new(s, ell, alpha);
        let tree = Arc::new(g.tree.clone());
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, g.min_capacity));
        // Track per-node paying requests since last state change, and the
        // round at which T2 re-entered the field (its eviction).
        let n = tree.len();
        let mut pending = vec![0u64; n];
        let mut t2_in_field_from: Option<usize> = None;
        let mut r_req_after_t2: u64 = 0;
        let mut milestones_ok = true;
        let mut milestone_iter = g.milestones.iter();
        let mut next_milestone = milestone_iter.next();
        let mut final_field: Option<Vec<u64>> = None;

        for (i, &req) in g.schedule.iter().enumerate() {
            let out = tc.step_owned(req);
            if out.paid_service {
                pending[req.node.index()] += 1;
                if req.node == g.r && t2_in_field_from.is_some() && req.is_positive() {
                    r_req_after_t2 += 1;
                }
            }
            for action in &out.actions {
                // Milestone verification.
                let matches_expected = match (&next_milestone, action) {
                    (Some(m), Action::Fetch(set)) => {
                        let mut sorted = set.clone();
                        sorted.sort_unstable();
                        m.index == i && m.expected == ExpectedAction::Fetch(sorted)
                    }
                    (Some(m), Action::Evict(set)) => {
                        let mut sorted = set.clone();
                        sorted.sort_unstable();
                        m.index == i && m.expected == ExpectedAction::Evict(sorted)
                    }
                    _ => false,
                };
                milestones_ok &= matches_expected;
                next_milestone = milestone_iter.next();
                match action {
                    Action::Evict(set) if set.contains(&g.r2) => {
                        t2_in_field_from = Some(i);
                        for &v in set {
                            pending[v.index()] = 0;
                        }
                    }
                    Action::Evict(set) | Action::Fetch(set) => {
                        if next_milestone.is_none() && matches!(action, Action::Fetch(_)) {
                            // The final full fetch: snapshot the field.
                            final_field = Some(pending.clone());
                        }
                        for &v in set {
                            pending[v.index()] = 0;
                        }
                    }
                    Action::Flush(_) => unreachable!("gadget never overflows"),
                }
            }
        }
        milestones_ok &= next_milestone.is_none();
        let field = final_field.expect("final fetch happened");
        let req_r = field[g.r.index()];
        let req_r1 = field[g.r1.index()];
        let req_t2: u64 = g.t2_nodes().iter().map(|&v| field[v.index()]).sum();
        let field_size = tree.len() as u64;
        // Counting argument: only requests that arrived at r after T2
        // joined the field can be legally shifted into T2 (downward shifts
        // must stay inside the field). Everything else is stuck in
        // T1 ∪ {r}.
        let shiftable = r_req_after_t2;
        let half = alpha / 2;
        // Nodes of T1 ∪ {r} can absorb α/2 each from the mass at r and r1;
        // T2 can absorb only `shiftable` requests in total.
        let reachable_t1_side = ((req_r + req_r1) / half).min(g.s as u64 + 1);
        let reachable_t2_side = (shiftable / half).min(g.s as u64);
        let reachable = reachable_t1_side + reachable_t2_side;
        table.row([
            s.to_string(),
            ell.to_string(),
            alpha.to_string(),
            milestones_ok.to_string(),
            field_size.to_string(),
            req_r.to_string(),
            req_r1.to_string(),
            req_t2.to_string(),
            shiftable.to_string(),
            reachable.to_string(),
            fmt_f64(reachable as f64 / field_size as f64),
        ]);
        assert!(tc.cache().len() == tree.len(), "final fetch cached everything");
    }
    println!("{}", table.to_markdown());
    println!(
        "Reading: 'milestones ok' must be true (TC follows the chronology of Fig. 4,\n\
         modulo the one-request fidelity adjustment documented in otc-workloads).\n\
         'shiftable into T2' stays at ℓ+1 — vanishing vs the s·α/2 that side would\n\
         need — so the reachable fraction approaches 1/2: exact α-per-node shifting\n\
         in positive fields is impossible (Appendix D), which is why Lemma 5.10 only\n\
         guarantees a 1/(2h(T)) fraction of full out-periods."
    );
}
