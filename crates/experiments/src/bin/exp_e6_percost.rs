//! E6 — Theorem 6.1: TC decides in
//! `O(h(T) + max{h(T), deg(T)}·|Xt|)` operations with `O(|T|)` memory.
//!
//! Two measurements:
//! 1. **Operation counts** — `TcFast` counts its elementary steps
//!    (ancestors visited, changeset nodes touched, children scanned); the
//!    table reports the worst observed `ops / (h + max(h, deg)·|Xt|)`
//!    normalisation, which must stay below a small constant across shapes
//!    that stress each term (deep paths → `h`, wide stars → `deg`).
//! 2. **Wall-clock** — ns/request of the fast implementation vs the
//!    from-scratch reference (O(n) per paying round) on a mid-size tree.

use std::sync::Arc;
use std::time::Instant;

use otc_core::policy::CachePolicy;
use otc_core::tc::{TcConfig, TcFast, TcReference};
use otc_core::tree::Tree;
use otc_experiments::{banner, fmt_f64, Table};
use otc_util::SplitMix64;
use otc_workloads::{random_attachment, uniform_mixed, zipf_positive};

fn main() {
    banner(
        "E6",
        "Theorem 6.1 (efficient implementation)",
        "per decision: O(h(T) + max{h(T), deg(T)}·|Xt|) operations, O(|T|) memory",
    );

    println!("### Operation counts, normalised by the theorem's envelope\n");
    let mut rng = SplitMix64::new(0xE6);
    let mut table = Table::new([
        "tree",
        "n",
        "h",
        "deg",
        "alpha",
        "mean ops/req",
        "worst normalised",
        "ok(<8)",
    ]);
    let shapes: Vec<(String, Arc<Tree>)> = vec![
        ("path(2000)".into(), Arc::new(Tree::path(2000))),
        ("star(20000)".into(), Arc::new(Tree::star(20_000))),
        ("kary(2,12)".into(), Arc::new(Tree::kary(2, 12))),
        ("kary(8,5)".into(), Arc::new(Tree::kary(8, 5))),
        ("random(50000)".into(), Arc::new(random_attachment(50_000, &mut rng))),
    ];
    for (name, tree) in &shapes {
        let alpha = 4u64;
        let k = (tree.len() / 4).max(4);
        let reqs = uniform_mixed(tree, 150_000, 0.4, &mut rng);
        let mut tc = TcFast::new(Arc::clone(tree), TcConfig::new(alpha, k));
        let h = u64::from(tree.height());
        let deg = u64::from(tree.max_degree());
        let mut worst_norm = 0.0f64;
        let mut paying = 0u64;
        let mut buf = otc_core::policy::ActionBuffer::new();
        for &r in &reqs {
            tc.step(r, &mut buf);
            if !buf.paid_service() {
                continue;
            }
            paying += 1;
            let xt: u64 = buf.nodes_touched() as u64;
            let envelope = h + h.max(deg) * xt + 1;
            let norm = tc.last_step_ops() as f64 / envelope as f64;
            worst_norm = worst_norm.max(norm);
        }
        let mean_ops = tc.total_ops() as f64 / paying.max(1) as f64;
        table.row([
            name.clone(),
            tree.len().to_string(),
            tree.height().to_string(),
            tree.max_degree().to_string(),
            alpha.to_string(),
            fmt_f64(mean_ops),
            fmt_f64(worst_norm),
            (worst_norm < 8.0).to_string(),
        ]);
    }
    println!("{}", table.to_markdown());

    println!("### Wall-clock: fast implementation vs from-scratch reference\n");
    let mut table =
        Table::new(["tree", "n", "requests", "fast ns/req", "reference ns/req", "speedup"]);
    for n in [300usize, 1000, 3000] {
        let tree = Arc::new(random_attachment(n, &mut rng));
        let reqs = zipf_positive(&tree, 60_000, 0.9, &mut rng);
        let alpha = 4u64;
        let k = n / 3;
        let time_of = |policy: &mut dyn CachePolicy| -> f64 {
            let mut buf = otc_core::policy::ActionBuffer::new();
            let start = Instant::now();
            for &r in &reqs {
                policy.step(r, &mut buf);
            }
            start.elapsed().as_nanos() as f64 / reqs.len() as f64
        };
        let mut fast = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, k));
        let fast_ns = time_of(&mut fast);
        let mut reference = TcReference::new(Arc::clone(&tree), TcConfig::new(alpha, k));
        let ref_ns = time_of(&mut reference);
        table.row([
            format!("random({n})"),
            n.to_string(),
            reqs.len().to_string(),
            fmt_f64(fast_ns),
            fmt_f64(ref_ns),
            fmt_f64(ref_ns / fast_ns),
        ]);
    }
    println!("{}", table.to_markdown());
    println!(
        "Reading: the normalised worst case stays O(1) across height- and degree-\n\
         extremal shapes — the Theorem 6.1 envelope. The reference implementation's\n\
         per-request time grows with n while the fast one's does not; the speedup\n\
         column should widen with n. (Criterion benches in otc-bench repeat this\n\
         with statistical rigour.)"
    );
}
