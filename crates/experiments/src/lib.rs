//! # otc-experiments — shared harness code for the `exp_*` binaries
//!
//! Each binary in `src/bin/` regenerates one paper artifact (see the
//! experiment index in `DESIGN.md` and the recorded outcomes in
//! `EXPERIMENTS.md`). This library holds the plumbing they share:
//! cost evaluation through the *verified* simulator, ratio sweeps over
//! seeds, and uniform table output.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::Arc;

use otc_core::policy::CachePolicy;
use otc_core::request::Request;
use otc_core::tc::{TcConfig, TcFast};
use otc_core::tree::Tree;
use otc_sim::engine::{EngineConfig, ShardedEngine};
use otc_sim::{run_policy, run_stream, Report, SimConfig};

/// Chunk size used by the batched-driver helpers: large enough to
/// amortise per-chunk accounting and (in debug builds) the audit hook,
/// small enough to keep the request chunk in cache.
pub const STREAM_CHUNK: usize = 4096;

pub use otc_util::table::{fmt_f64, Table};

/// Prints the standard experiment banner.
pub fn banner(id: &str, artifact: &str, claim: &str) {
    println!("## {id} — {artifact}");
    println!();
    println!("Paper claim: {claim}");
    println!();
}

/// Runs TC (the fast implementation) through the verified simulator and
/// returns the report.
///
/// # Panics
/// Panics if the simulator detects a protocol violation — that would be a
/// bug in TC itself and must abort the experiment loudly.
#[must_use]
pub fn run_tc(tree: &Arc<Tree>, requests: &[Request], alpha: u64, capacity: usize) -> Report {
    let mut tc = TcFast::new(Arc::clone(tree), TcConfig::new(alpha, capacity));
    run_policy(tree, &mut tc, requests, SimConfig::new(alpha))
        .expect("TC must never violate the protocol")
}

/// Runs an arbitrary policy through the verified simulator.
///
/// # Panics
/// Panics on protocol violations (all our policies are supposed to be
/// correct; experiments should fail fast otherwise).
#[must_use]
pub fn run_checked(
    tree: &Arc<Tree>,
    policy: &mut dyn CachePolicy,
    requests: &[Request],
    alpha: u64,
) -> Report {
    run_policy(tree, policy, requests, SimConfig::new(alpha))
        .expect("policy must not violate the protocol")
}

/// Runs an arbitrary policy through the *batched* verified driver
/// (`run_stream`) — the entry point for long request streams. Identical
/// semantics to [`run_checked`]; cost accounting is amortised per chunk
/// and debug builds re-audit the policy's internal aggregates at every
/// chunk boundary.
///
/// # Panics
/// Panics on protocol violations or (debug builds) audit failures.
#[must_use]
pub fn run_checked_stream(
    tree: &Arc<Tree>,
    policy: &mut dyn CachePolicy,
    requests: &[Request],
    alpha: u64,
) -> Report {
    run_stream(tree, policy, requests, SimConfig::new(alpha), STREAM_CHUNK)
        .expect("policy must not violate the protocol")
}

/// Total cost of TC on a sequence (convenience).
#[must_use]
pub fn tc_total(tree: &Arc<Tree>, requests: &[Request], alpha: u64, capacity: usize) -> u64 {
    run_tc(tree, requests, alpha, capacity).total()
}

/// Total cost of a policy through the engine's bare (unvalidated,
/// uninstrumented) single-shard configuration — the fast path for
/// ablation sweeps and searches, replacing the old ad-hoc `run_raw`
/// loops. The paid-service flag and flush payloads are still verified, so
/// a policy cannot misreport its own cost.
///
/// # Panics
/// Panics if the policy misreports a payment or a flush payload.
#[must_use]
pub fn bare_cost(
    tree: &Tree,
    policy: &mut dyn CachePolicy,
    requests: &[Request],
    alpha: u64,
) -> u64 {
    let mut engine = ShardedEngine::single_borrowed(tree, policy, EngineConfig::bare(alpha));
    engine.submit_batch(requests).expect("policy must not violate the protocol");
    engine.into_report().expect("policy must not violate the protocol").total()
}

/// `a / b` with the zero conventions of experiments (0/0 = 1).
#[must_use]
pub fn ratio(a: u64, b: u64) -> f64 {
    otc_util::stats::cost_ratio(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use otc_core::tree::Tree;

    #[test]
    fn run_tc_smoke() {
        let tree = Arc::new(Tree::star(4));
        let leaf = tree.leaves()[0];
        let reqs = vec![Request::pos(leaf), Request::pos(leaf)];
        let report = run_tc(&tree, &reqs, 2, 3);
        assert_eq!(report.cost.service, 2);
        assert_eq!(report.cost.reorg, 2);
    }

    #[test]
    fn stream_helper_agrees_with_per_round_driver() {
        let tree = Arc::new(Tree::kary(2, 4));
        let mut rng = otc_util::SplitMix64::new(3);
        let reqs: Vec<Request> = (0..6000)
            .map(|_| {
                let v = otc_core::tree::NodeId(rng.index(tree.len()) as u32);
                if rng.chance(0.4) {
                    Request::neg(v)
                } else {
                    Request::pos(v)
                }
            })
            .collect();
        let base = run_tc(&tree, &reqs, 3, 6);
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(3, 6));
        let stream = run_checked_stream(&tree, &mut tc, &reqs, 3);
        assert_eq!(base.cost.total(), stream.cost.total());
        assert_eq!(base.flush_events, stream.flush_events);
    }

    #[test]
    fn ratio_conventions() {
        assert_eq!(ratio(0, 0), 1.0);
        assert!((ratio(3, 2) - 1.5).abs() < 1e-12);
    }
}
