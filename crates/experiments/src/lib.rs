//! # otc-experiments — shared harness code for the `exp_*` binaries
//!
//! Each binary in `src/bin/` regenerates one paper artifact (see the
//! experiment index in `DESIGN.md` and the recorded outcomes in
//! `EXPERIMENTS.md`). This library holds the plumbing they share:
//! cost evaluation through the *verified* simulator, ratio sweeps over
//! seeds, and uniform table output.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::Arc;

use otc_core::policy::CachePolicy;
use otc_core::request::Request;
use otc_core::tc::{TcConfig, TcFast};
use otc_core::tree::Tree;
use otc_sim::{run_policy, Report, SimConfig};

pub use otc_util::table::{fmt_f64, Table};

/// Prints the standard experiment banner.
pub fn banner(id: &str, artifact: &str, claim: &str) {
    println!("## {id} — {artifact}");
    println!();
    println!("Paper claim: {claim}");
    println!();
}

/// Runs TC (the fast implementation) through the verified simulator and
/// returns the report.
///
/// # Panics
/// Panics if the simulator detects a protocol violation — that would be a
/// bug in TC itself and must abort the experiment loudly.
#[must_use]
pub fn run_tc(tree: &Arc<Tree>, requests: &[Request], alpha: u64, capacity: usize) -> Report {
    let mut tc = TcFast::new(Arc::clone(tree), TcConfig::new(alpha, capacity));
    run_policy(tree, &mut tc, requests, SimConfig::new(alpha))
        .expect("TC must never violate the protocol")
}

/// Runs an arbitrary policy through the verified simulator.
///
/// # Panics
/// Panics on protocol violations (all our policies are supposed to be
/// correct; experiments should fail fast otherwise).
#[must_use]
pub fn run_checked(
    tree: &Arc<Tree>,
    policy: &mut dyn CachePolicy,
    requests: &[Request],
    alpha: u64,
) -> Report {
    run_policy(tree, policy, requests, SimConfig::new(alpha))
        .expect("policy must not violate the protocol")
}

/// Total cost of TC on a sequence (convenience).
#[must_use]
pub fn tc_total(tree: &Arc<Tree>, requests: &[Request], alpha: u64, capacity: usize) -> u64 {
    run_tc(tree, requests, alpha, capacity).total()
}

/// `a / b` with the zero conventions of experiments (0/0 = 1).
#[must_use]
pub fn ratio(a: u64, b: u64) -> f64 {
    otc_util::stats::cost_ratio(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use otc_core::tree::Tree;

    #[test]
    fn run_tc_smoke() {
        let tree = Arc::new(Tree::star(4));
        let leaf = tree.leaves()[0];
        let reqs = vec![Request::pos(leaf), Request::pos(leaf)];
        let report = run_tc(&tree, &reqs, 2, 3);
        assert_eq!(report.cost.service, 2);
        assert_eq!(report.cost.reorg, 2);
    }

    #[test]
    fn ratio_conventions() {
        assert_eq!(ratio(0, 0), 1.0);
        assert!((ratio(3, 2) - 1.5).abs() < 1e-12);
    }
}
