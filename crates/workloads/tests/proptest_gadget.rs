//! Property test: the Figure 4 gadget drives TC through its scripted
//! chronology for *arbitrary* admissible parameters, not just the
//! hand-picked ones.

use std::sync::Arc;

use otc_core::policy::{Action, CachePolicy};
use otc_core::tc::{TcConfig, TcFast};
use otc_workloads::gadget::ExpectedAction;
use otc_workloads::Fig4Gadget;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gadget_milestones_hold_for_all_parameters(
        ell in 1usize..6,
        extra_spine in 1usize..8,
        alpha in 1u64..9,
    ) {
        let s = ell + extra_spine;
        let g = Fig4Gadget::new(s, ell, alpha);
        let tree = Arc::new(g.tree.clone());
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, g.min_capacity));
        let mut milestones = g.milestones.iter();
        let mut next = milestones.next();
        for (i, &req) in g.schedule.iter().enumerate() {
            let out = tc.step_owned(req);
            for action in out.actions {
                let m = next.ok_or_else(|| {
                    TestCaseError::fail(format!("unexpected TC action at round {i}"))
                })?;
                prop_assert_eq!(m.index, i, "milestone fired at the wrong round");
                match (&m.expected, action) {
                    (ExpectedAction::Fetch(want), Action::Fetch(mut got)) => {
                        got.sort_unstable();
                        prop_assert_eq!(want.clone(), got);
                    }
                    (ExpectedAction::Evict(want), Action::Evict(mut got)) => {
                        got.sort_unstable();
                        prop_assert_eq!(want.clone(), got);
                    }
                    (want, got) => {
                        return Err(TestCaseError::fail(format!(
                            "round {i}: expected {want:?}, got {got:?}"
                        )));
                    }
                }
                next = milestones.next();
            }
            if let Err(e) = tc.audit() {
                return Err(TestCaseError::fail(format!("audit failed at round {i}: {e}")));
            }
        }
        prop_assert!(next.is_none(), "milestones left over");
        prop_assert_eq!(tc.cache().len(), tree.len(), "whole tree cached at the end");
    }
}
