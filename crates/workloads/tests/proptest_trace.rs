//! Property tests for the request-trace serialization seam
//! (`otc_workloads::trace::to_text` / `from_text`): the engine's batch API
//! accepts traces directly, so the round trip must be exact for arbitrary
//! request sequences and robust to the format's freedoms (comments,
//! blanks, surrounding whitespace).

use otc_core::request::{Request, Sign};
use otc_core::tree::NodeId;
use otc_workloads::trace::{from_text, to_text, validate_for_tree};
use proptest::prelude::*;

fn requests_from(seeds: &[(u32, bool)]) -> Vec<Request> {
    seeds
        .iter()
        .map(|&(id, pos)| Request {
            node: NodeId(id),
            sign: if pos { Sign::Positive } else { Sign::Negative },
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip_is_exact(seeds in prop::collection::vec((any::<u32>(), any::<bool>()), 0..600)) {
        let reqs = requests_from(&seeds);
        let text = to_text(&reqs);
        let back = from_text(&text).map_err(TestCaseError::fail)?;
        prop_assert_eq!(back, reqs);
    }

    #[test]
    fn round_trip_survives_comments_and_blanks(
        seeds in prop::collection::vec((any::<u32>(), any::<bool>()), 1..200),
        noise in prop::collection::vec(0u8..3, 1..200),
    ) {
        // Interleave the rendered lines with comment lines, blank lines and
        // stray indentation — all legal freedoms of the format.
        let reqs = requests_from(&seeds);
        let text = to_text(&reqs);
        let mut noisy = String::new();
        let mut noise_iter = noise.iter().cycle();
        for line in text.lines() {
            match noise_iter.next().unwrap() {
                0 => noisy.push_str("# interleaved comment\n"),
                1 => noisy.push_str("\n  \n"),
                _ => {}
            }
            noisy.push_str("  ");
            noisy.push_str(line);
            noisy.push('\n');
        }
        let back = from_text(&noisy).map_err(TestCaseError::fail)?;
        prop_assert_eq!(back, reqs);
    }

    #[test]
    fn tree_validation_matches_bound(
        seeds in prop::collection::vec((0u32..64, any::<bool>()), 1..100),
        leaves in 1usize..64,
    ) {
        let tree = otc_core::tree::Tree::star(leaves);
        let reqs = requests_from(&seeds);
        let in_range = reqs.iter().all(|r| r.node.index() < tree.len());
        prop_assert_eq!(validate_for_tree(&reqs, &tree).is_ok(), in_range);
    }
}
