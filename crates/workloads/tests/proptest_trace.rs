//! Property tests for the request-trace serialization seams: the
//! human-editable line format (`to_text` / `from_text`), the CSV/JSONL
//! interop, and the **binary** format (`Trace::save` / `Trace::load`) the
//! engine replays from files — round trips must be exact for arbitrary
//! request sequences and corrupt headers must be rejected, never
//! misparsed.

use otc_core::request::{Request, Sign};
use otc_core::tree::NodeId;
use otc_workloads::trace::{
    from_csv, from_jsonl, from_text, to_csv, to_jsonl, to_text, validate_for_tree, Trace,
    TraceHeader,
};
use proptest::prelude::*;

fn requests_from(seeds: &[(u32, bool)]) -> Vec<Request> {
    seeds
        .iter()
        .map(|&(id, pos)| Request {
            node: NodeId(id),
            sign: if pos { Sign::Positive } else { Sign::Negative },
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip_is_exact(seeds in prop::collection::vec((any::<u32>(), any::<bool>()), 0..600)) {
        let reqs = requests_from(&seeds);
        let text = to_text(&reqs);
        let back = from_text(&text).map_err(TestCaseError::fail)?;
        prop_assert_eq!(back, reqs);
    }

    #[test]
    fn round_trip_survives_comments_and_blanks(
        seeds in prop::collection::vec((any::<u32>(), any::<bool>()), 1..200),
        noise in prop::collection::vec(0u8..3, 1..200),
    ) {
        // Interleave the rendered lines with comment lines, blank lines and
        // stray indentation — all legal freedoms of the format.
        let reqs = requests_from(&seeds);
        let text = to_text(&reqs);
        let mut noisy = String::new();
        let mut noise_iter = noise.iter().cycle();
        for line in text.lines() {
            match noise_iter.next().unwrap() {
                0 => noisy.push_str("# interleaved comment\n"),
                1 => noisy.push_str("\n  \n"),
                _ => {}
            }
            noisy.push_str("  ");
            noisy.push_str(line);
            noisy.push('\n');
        }
        let back = from_text(&noisy).map_err(TestCaseError::fail)?;
        prop_assert_eq!(back, reqs);
    }

    #[test]
    fn tree_validation_matches_bound(
        seeds in prop::collection::vec((0u32..64, any::<bool>()), 1..100),
        leaves in 1usize..64,
    ) {
        let tree = otc_core::tree::Tree::star(leaves);
        let reqs = requests_from(&seeds);
        let in_range = reqs.iter().all(|r| r.node.index() < tree.len());
        prop_assert_eq!(validate_for_tree(&reqs, &tree).is_ok(), in_range);
    }

    #[test]
    fn binary_round_trip_is_identity(
        seeds in prop::collection::vec((any::<u32>(), any::<bool>()), 0..800),
        seed in any::<u64>(),
        shard_map in prop::collection::vec(any::<u32>(), 0..6),
        name in prop::collection::vec(97u8..123, 0..24),
    ) {
        // universe = 0 disables the bound, so the full u32 id range must
        // survive the varint encoding bit-for-bit.
        let trace = Trace {
            header: TraceHeader {
                universe: 0,
                shard_map,
                seed,
                generator: String::from_utf8(name).unwrap(),
            },
            requests: requests_from(&seeds),
        };
        let back = Trace::from_bytes(&trace.to_bytes()).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn corrupt_headers_are_rejected_not_misparsed(
        seeds in prop::collection::vec((0u32..1000, any::<bool>()), 1..50),
        flip_at in 0usize..20,
        flip_bit in 0u8..8,
    ) {
        // Flipping any bit in the fixed part of the header must either be
        // rejected outright or change only *metadata* fields it legally
        // may (universe / seed / shard sizes) — never panic, never yield a
        // different request sequence under the same magic+version+flags.
        let trace = Trace {
            header: TraceHeader::single_tree(1000, 7, "prop"),
            requests: requests_from(&seeds),
        };
        let mut bytes = trace.to_bytes();
        if flip_at < bytes.len() {
            bytes[flip_at] ^= 1 << flip_bit;
            match Trace::from_bytes(&bytes) {
                Err(_) => {} // rejected: fine
                Ok(back) => {
                    // Accepted: the magic/version region (bytes 0..6) must
                    // have been untouched for this to parse at all. One flip
                    // in the flags word is legal — bit 0 of byte 6 is
                    // TRACE_FLAG_REBALANCE, which only *permits* extra
                    // records without changing how requests parse. Either
                    // way the requests must come back identical — a
                    // metadata-field flip cannot corrupt the body silently.
                    let rebalance_bit = flip_at == 6 && flip_bit == 0;
                    prop_assert!(
                        flip_at >= 8 || rebalance_bit,
                        "flips in magic/version/flags must be rejected"
                    );
                    prop_assert_eq!(back.requests, trace.requests);
                }
            }
        }
    }

    #[test]
    fn truncated_bodies_are_detected(
        seeds in prop::collection::vec((0u32..1000, any::<bool>()), 1..100),
        cut in 1usize..16,
    ) {
        let trace = Trace {
            header: TraceHeader::single_tree(1000, 3, "prop"),
            requests: requests_from(&seeds),
        };
        let bytes = trace.to_bytes();
        if cut < bytes.len() {
            // The declared record count makes any truncation detectable.
            prop_assert!(Trace::from_bytes(&bytes[..bytes.len() - cut]).is_err());
        }
    }

    #[test]
    fn csv_and_jsonl_round_trips_are_exact(
        seeds in prop::collection::vec((any::<u32>(), any::<bool>()), 0..300),
    ) {
        let reqs = requests_from(&seeds);
        prop_assert_eq!(from_csv(&to_csv(&reqs)).map_err(TestCaseError::fail)?, reqs.clone());
        prop_assert_eq!(from_jsonl(&to_jsonl(&reqs)).map_err(TestCaseError::fail)?, reqs);
    }
}
