//! The Figure 4 / Appendix D gadget: a positive field whose requests cannot
//! be shifted down to give every node `α` requests.
//!
//! The tree is a root `r` with two identical subtrees `T1`, `T2`, each a
//! "broom" of size `s` with `ℓ` leaves. The scripted schedule walks TC
//! through the chronology of Figure 4:
//!
//! 1. *(setup)* fetch the entire tree ((2s+1)·α positive requests at `r`);
//! 2. evict `T1 ∪ {r}` (α negative requests per node, bottom-up);
//! 3. (s+1)·α − ℓ positive requests at `r` — too few to trigger anything;
//! 4. evict `T2` (α negative requests per node, bottom-up);
//! 5. s·α − 1 positive requests at the root of `T1` — still no fetch;
//! 6. ℓ + 1 positive requests at `r`; the last one saturates `P(r)` = the
//!    whole tree, which TC fetches.
//!
//! **Fidelity note.** The paper's step 4 issues exactly `s·α` requests and
//! calls it "too small to trigger a fetch"; with TC's saturation condition
//! `cnt(X) ≥ |X|·α` the `s·α`-th request would saturate `P(T1-root)`
//! exactly. We stop one request short (and lengthen the final stage by
//! one), which preserves the construction's point: when the final fetch
//! happens, nearly all of the field's requests sit at `r` and the root of
//! `T1`, and only the last `ℓ + 1` arrive while `T2` is part of the field —
//! so shifting can deliver `Ω(α)` requests to at most half of the nodes
//! (Appendix D's impossibility).

use otc_core::request::Request;
use otc_core::tree::{NodeId, Tree};

/// What TC is expected to do at a milestone request index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExpectedAction {
    /// Fetch exactly these nodes (sorted).
    Fetch(Vec<NodeId>),
    /// Evict exactly these nodes (sorted).
    Evict(Vec<NodeId>),
}

/// A scripted milestone: after serving `schedule[index]`, TC applies the
/// expected changeset.
#[derive(Debug, Clone)]
pub struct Milestone {
    /// Index into the schedule (0-based).
    pub index: usize,
    /// The changeset TC must apply at that round.
    pub expected: ExpectedAction,
}

/// The constructed gadget.
#[derive(Debug, Clone)]
pub struct Fig4Gadget {
    /// The tree: node 0 = `r`, nodes `1..=s` = `T1`, nodes `s+1..=2s` = `T2`.
    pub tree: Tree,
    /// The problem's α.
    pub alpha: u64,
    /// Subtree size `s`.
    pub s: usize,
    /// Leaves per subtree `ℓ`.
    pub ell: usize,
    /// The full scripted request sequence.
    pub schedule: Vec<Request>,
    /// Expected TC actions, in order.
    pub milestones: Vec<Milestone>,
    /// Root `r`.
    pub r: NodeId,
    /// Root of `T1`.
    pub r1: NodeId,
    /// Root of `T2`.
    pub r2: NodeId,
    /// Start index of each stage in the schedule (6 entries: setup, evict1,
    /// fill-r, evict2, fill-r1, final).
    pub stage_starts: [usize; 6],
    /// Minimum cache capacity for the script to work (the whole tree).
    pub min_capacity: usize,
}

impl Fig4Gadget {
    /// Builds the gadget. Requirements: `s ≥ ℓ + 1`, `ℓ ≥ 1`, `α ≥ 2`
    /// (with `α = 1` stage 5's "one short" would be empty-adjacent but
    /// still fine; we keep the paper's "large α" spirit).
    #[must_use]
    pub fn new(s: usize, ell: usize, alpha: u64) -> Self {
        assert!(ell >= 1, "each subtree needs at least one leaf");
        assert!(s > ell, "broom needs a spine: s >= ell + 1");
        assert!(alpha >= 1);
        let spine = s - ell;

        // Node layout: 0 = r; T1 occupies 1..=s (spine then bristles);
        // T2 occupies s+1..=2s.
        let mut parents: Vec<Option<usize>> = Vec::with_capacity(2 * s + 1);
        parents.push(None);
        let push_broom = |parents: &mut Vec<Option<usize>>, base: usize| {
            for i in 0..spine {
                parents.push(Some(if i == 0 { 0 } else { base + i - 1 }));
            }
            for _ in 0..ell {
                parents.push(Some(base + spine - 1));
            }
        };
        push_broom(&mut parents, 1);
        push_broom(&mut parents, s + 1);
        let tree = Tree::from_parents(&parents);

        let r = NodeId(0);
        let r1 = NodeId(1);
        let r2 = NodeId(s as u32 + 1);
        let t1_nodes: Vec<NodeId> = tree.subtree(r1).to_vec();
        let t2_nodes: Vec<NodeId> = tree.subtree(r2).to_vec();
        debug_assert_eq!(t1_nodes.len(), s);
        debug_assert_eq!(t2_nodes.len(), s);

        let n_total = 2 * s + 1;
        let mut schedule = Vec::new();
        let mut milestones = Vec::new();
        let mut stage_starts = [0usize; 6];

        // Stage 0 (setup): fetch the whole tree.
        stage_starts[0] = schedule.len();
        for _ in 0..n_total as u64 * alpha {
            schedule.push(Request::pos(r));
        }
        let mut all: Vec<NodeId> = tree.nodes().collect();
        all.sort_unstable();
        milestones.push(Milestone {
            index: schedule.len() - 1,
            expected: ExpectedAction::Fetch(all.clone()),
        });

        // Stage 1: evict T1 ∪ {r} — α negatives per node, bottom-up
        // (reverse preorder of T1 ends at r1), then α at r.
        stage_starts[1] = schedule.len();
        for &v in t1_nodes.iter().rev() {
            for _ in 0..alpha {
                schedule.push(Request::neg(v));
            }
        }
        for _ in 0..alpha {
            schedule.push(Request::neg(r));
        }
        let mut evict1: Vec<NodeId> = t1_nodes.iter().copied().chain([r]).collect();
        evict1.sort_unstable();
        milestones
            .push(Milestone { index: schedule.len() - 1, expected: ExpectedAction::Evict(evict1) });

        // Stage 2: (s+1)·α − ℓ positives at r; P(r) = T1 ∪ {r} stays short
        // of saturation by ℓ.
        stage_starts[2] = schedule.len();
        for _ in 0..(s as u64 + 1) * alpha - ell as u64 {
            schedule.push(Request::pos(r));
        }

        // Stage 3: evict T2 — α negatives per node, bottom-up.
        stage_starts[3] = schedule.len();
        for &v in t2_nodes.iter().rev() {
            for _ in 0..alpha {
                schedule.push(Request::neg(v));
            }
        }
        let mut evict2 = t2_nodes.clone();
        evict2.sort_unstable();
        milestones
            .push(Milestone { index: schedule.len() - 1, expected: ExpectedAction::Evict(evict2) });

        // Stage 4: s·α − 1 positives at r1 (one short of saturating P(r1)).
        stage_starts[4] = schedule.len();
        for _ in 0..s as u64 * alpha - 1 {
            schedule.push(Request::pos(r1));
        }

        // Stage 5: ℓ + 1 positives at r; the last saturates P(r) = T and
        // TC fetches everything.
        stage_starts[5] = schedule.len();
        for _ in 0..ell as u64 + 1 {
            schedule.push(Request::pos(r));
        }
        milestones
            .push(Milestone { index: schedule.len() - 1, expected: ExpectedAction::Fetch(all) });

        Self {
            tree,
            alpha,
            s,
            ell,
            schedule,
            milestones,
            r,
            r1,
            r2,
            stage_starts,
            min_capacity: n_total,
        }
    }

    /// Nodes of `T1` (preorder).
    #[must_use]
    pub fn t1_nodes(&self) -> &[NodeId] {
        self.tree.subtree(self.r1)
    }

    /// Nodes of `T2` (preorder).
    #[must_use]
    pub fn t2_nodes(&self) -> &[NodeId] {
        self.tree.subtree(self.r2)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use otc_core::policy::{Action, CachePolicy};
    use otc_core::tc::{TcConfig, TcFast};

    fn run_and_collect(g: &Fig4Gadget) -> Vec<(usize, ExpectedAction)> {
        let tree = Arc::new(g.tree.clone());
        let mut tc = TcFast::new(tree, TcConfig::new(g.alpha, g.min_capacity));
        let mut observed = Vec::new();
        for (i, &req) in g.schedule.iter().enumerate() {
            let out = tc.step_owned(req);
            for action in out.actions {
                let obs = match action {
                    Action::Fetch(mut set) => {
                        set.sort_unstable();
                        ExpectedAction::Fetch(set)
                    }
                    Action::Evict(mut set) => {
                        set.sort_unstable();
                        ExpectedAction::Evict(set)
                    }
                    Action::Flush(_) => panic!("gadget must not overflow the cache"),
                };
                observed.push((i, obs));
            }
        }
        observed
    }

    #[test]
    fn tc_follows_the_script_small() {
        let g = Fig4Gadget::new(3, 2, 4);
        let observed = run_and_collect(&g);
        let expected: Vec<(usize, ExpectedAction)> =
            g.milestones.iter().map(|m| (m.index, m.expected.clone())).collect();
        assert_eq!(observed, expected);
    }

    #[test]
    fn tc_follows_the_script_larger() {
        let g = Fig4Gadget::new(8, 3, 6);
        let observed = run_and_collect(&g);
        let expected: Vec<(usize, ExpectedAction)> =
            g.milestones.iter().map(|m| (m.index, m.expected.clone())).collect();
        assert_eq!(observed, expected);
    }

    #[test]
    fn tc_follows_the_script_alpha_two() {
        let g = Fig4Gadget::new(4, 1, 2);
        let observed = run_and_collect(&g);
        assert_eq!(observed.len(), g.milestones.len());
        for (obs, exp) in observed.iter().zip(&g.milestones) {
            assert_eq!(obs.0, exp.index);
            assert_eq!(obs.1, exp.expected);
        }
    }

    #[test]
    fn tree_shape() {
        let g = Fig4Gadget::new(5, 2, 4);
        assert_eq!(g.tree.len(), 11);
        assert_eq!(g.t1_nodes().len(), 5);
        assert_eq!(g.t2_nodes().len(), 5);
        assert_eq!(g.tree.leaves().len(), 4);
        assert_eq!(g.tree.parent(g.r1), Some(g.r));
        assert_eq!(g.tree.parent(g.r2), Some(g.r));
    }

    #[test]
    fn stage_boundaries_ordered() {
        let g = Fig4Gadget::new(6, 2, 4);
        for w in g.stage_starts.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(g.stage_starts[5] < g.schedule.len());
    }
}
