//! Request-sequence generators.
//!
//! Positive requests model rule accesses (cache misses cost 1); negative
//! requests model rule updates (rewriting a cached TCAM entry costs 1).
//! Rule updates arrive as **chunks of α consecutive negative requests** —
//! that is exactly how the paper maps update costs into the request model
//! (Section 2 / Appendix B).

use otc_core::forest::Forest;
use otc_core::request::{Request, Sign};
use otc_core::tree::{NodeId, Tree};
use otc_util::{SplitMix64, Zipf};

/// Zipf-popular positive requests: node popularity ranks are a random
/// permutation of all tree nodes; requests draw ranks from Zipf(θ).
#[must_use]
pub fn zipf_positive(tree: &Tree, len: usize, theta: f64, rng: &mut SplitMix64) -> Vec<Request> {
    let ranked = ranked_nodes(tree, rng);
    let zipf = Zipf::new(ranked.len(), theta);
    (0..len).map(|_| Request::pos(ranked[zipf.sample(rng)])).collect()
}

/// Uniformly random requests with a given probability of being negative.
#[must_use]
pub fn uniform_mixed(tree: &Tree, len: usize, neg_p: f64, rng: &mut SplitMix64) -> Vec<Request> {
    (0..len)
        .map(|_| {
            let node = NodeId(rng.index(tree.len()) as u32);
            let sign = if rng.chance(neg_p) { Sign::Negative } else { Sign::Positive };
            Request { node, sign }
        })
        .collect()
}

/// Configuration for the FIB-like mixed workload.
#[derive(Debug, Clone, Copy)]
pub struct MixedConfig {
    /// Total number of requests to emit (update chunks count α each).
    pub len: usize,
    /// Zipf exponent for access popularity.
    pub theta: f64,
    /// Probability that the next event is a rule update rather than an
    /// access.
    pub update_p: f64,
    /// Chunk size for updates (the problem's α).
    pub alpha: u64,
}

/// Zipf-popular accesses interleaved with rule-update chunks: each update
/// event emits `α` consecutive negative requests to one node (Appendix B's
/// encoding of a router-entry rewrite of cost α).
#[must_use]
pub fn zipf_with_updates(tree: &Tree, cfg: MixedConfig, rng: &mut SplitMix64) -> Vec<Request> {
    let ranked = ranked_nodes(tree, rng);
    let zipf = Zipf::new(ranked.len(), cfg.theta);
    let mut out = Vec::with_capacity(cfg.len);
    while out.len() < cfg.len {
        if rng.chance(cfg.update_p) {
            // Updates hit rules by the same popularity law: hot rules
            // change more often (route flaps affect busy prefixes too).
            let node = ranked[zipf.sample(rng)];
            for _ in 0..cfg.alpha {
                out.push(Request::neg(node));
                if out.len() == cfg.len {
                    break;
                }
            }
        } else {
            out.push(Request::pos(ranked[zipf.sample(rng)]));
        }
    }
    out
}

/// Working-set drift: Zipf-popular positives whose popularity permutation
/// is re-drawn every `epoch` requests. Stresses adaptivity (an algorithm
/// must evict the old working set).
#[must_use]
pub fn shifting_zipf(
    tree: &Tree,
    len: usize,
    theta: f64,
    epoch: usize,
    rng: &mut SplitMix64,
) -> Vec<Request> {
    assert!(epoch >= 1);
    let zipf = Zipf::new(tree.len(), theta);
    let mut out = Vec::with_capacity(len);
    let mut ranked = ranked_nodes(tree, rng);
    for i in 0..len {
        if i > 0 && i % epoch == 0 {
            ranked = ranked_nodes(tree, rng);
        }
        out.push(Request::pos(ranked[zipf.sample(rng)]));
    }
    out
}

/// Bursty update churn layered over Zipf traffic: BGP-style updates arrive
/// in *bursts* (route flaps touch many related prefixes within a short
/// window), not as independent events. Each burst picks a subtree root and
/// issues one α-chunk of negatives per node of a random cap of that
/// subtree, interleaved with ordinary Zipf-popular accesses.
#[must_use]
pub fn zipf_with_bursty_updates(
    tree: &Tree,
    cfg: MixedConfig,
    burst_span: usize,
    rng: &mut SplitMix64,
) -> Vec<Request> {
    assert!(burst_span >= 1);
    let ranked = ranked_nodes(tree, rng);
    let zipf = Zipf::new(ranked.len(), cfg.theta);
    let mut out = Vec::with_capacity(cfg.len);
    while out.len() < cfg.len {
        if rng.chance(cfg.update_p) {
            // A flap event: update a random node and up to burst_span − 1
            // of its closest descendants (a path-ish cap of its subtree —
            // related prefixes change together).
            let center = ranked[zipf.sample(rng)];
            let subtree = tree.subtree(center);
            let span = subtree.len().min(1 + rng.index(burst_span));
            for &v in &subtree[..span] {
                for _ in 0..cfg.alpha {
                    out.push(Request::neg(v));
                    if out.len() == cfg.len {
                        return out;
                    }
                }
            }
        } else {
            out.push(Request::pos(ranked[zipf.sample(rng)]));
        }
    }
    out
}

/// One tenant's traffic profile in a multi-shard stream: every shard of a
/// forest is a tenant with its own arrival weight, Zipf skew and churn.
#[derive(Debug, Clone, Copy)]
pub struct TenantProfile {
    /// Relative arrival rate of this tenant's events (any positive scale).
    pub weight: f64,
    /// Zipf exponent of the tenant's access popularity.
    pub theta: f64,
    /// Probability that a tenant event is a rule update (an α-chunk of
    /// negatives) rather than an access.
    pub update_p: f64,
}

impl TenantProfile {
    /// A uniform-weight tenant with the given skew and no churn.
    #[must_use]
    pub fn skewed(theta: f64) -> Self {
        Self { weight: 1.0, theta, update_p: 0.0 }
    }
}

/// Multi-tenant stream over a [`Forest`]: each event picks a shard by the
/// tenants' arrival weights, then a node inside that shard by the tenant's
/// own Zipf law (per-shard popularity permutations are independent), and
/// emits either one positive request or an update chunk of `alpha`
/// negatives. All emitted node ids are **global** — ready for
/// `ShardedEngine::submit_batch`, which routes them back to their shards.
///
/// For partitioned forests, shard-local root replicas are excluded from
/// the rankings (the shared global root is addressable only through shard
/// 0's ranking, where it keeps its identity).
///
/// # Panics
/// Panics if `profiles.len() != forest.num_shards()`, or if every weight
/// is non-positive.
#[must_use]
pub fn multi_tenant_stream(
    forest: &Forest,
    profiles: &[TenantProfile],
    len: usize,
    alpha: u64,
    rng: &mut SplitMix64,
) -> Vec<Request> {
    assert_eq!(profiles.len(), forest.num_shards(), "one tenant profile per forest shard");
    let total_weight: f64 = profiles.iter().map(|p| p.weight.max(0.0)).sum();
    assert!(total_weight > 0.0, "at least one tenant needs positive weight");

    let rankings = shard_rankings(forest, rng);
    let zipfs: Vec<Zipf> =
        rankings.iter().zip(profiles).map(|(r, p)| Zipf::new(r.len(), p.theta)).collect();

    let last_positive =
        profiles.iter().rposition(|p| p.weight > 0.0).expect("positive total weight");
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        // Weighted tenant pick (linear scan: tenant counts are small).
        // Zero-weight tenants are skipped outright — a draw of exactly 0.0
        // must never land on them — and floating-point shortfall at the top
        // end falls back to the last positive-weight tenant.
        let mut pick = rng.next_f64() * total_weight;
        let mut s = last_positive;
        for (i, p) in profiles.iter().enumerate() {
            let w = p.weight;
            if w <= 0.0 {
                continue;
            }
            if pick < w {
                s = i;
                break;
            }
            pick -= w;
        }
        let node = rankings[s][zipfs[s].sample(rng)];
        if rng.chance(profiles[s].update_p) {
            for _ in 0..alpha {
                out.push(Request::neg(node));
                if out.len() == len {
                    break;
                }
            }
        } else {
            out.push(Request::pos(node));
        }
    }
    out
}

/// Configuration for the Markov-modulated bursty arrival process.
#[derive(Debug, Clone, Copy)]
pub struct MarkovBurstyConfig {
    /// Total number of requests to emit (update chunks count α each).
    pub len: usize,
    /// Chunk size for updates (the problem's α).
    pub alpha: u64,
    /// Zipf exponent of access popularity (both states).
    pub theta: f64,
    /// Update probability per event while **calm**.
    pub calm_update_p: f64,
    /// Update probability per event while **bursty**.
    pub burst_update_p: f64,
    /// Per-event probability of entering a burst from the calm state.
    pub enter_p: f64,
    /// Per-event probability of leaving a burst (expected burst length is
    /// `1/exit_p` events).
    pub exit_p: f64,
    /// While bursty, events target only the hottest `burst_focus` ranks
    /// (the flapping working set); `0` disables focusing.
    pub burst_focus: usize,
}

impl Default for MarkovBurstyConfig {
    fn default() -> Self {
        Self {
            len: 100_000,
            alpha: 4,
            theta: 1.0,
            calm_update_p: 0.005,
            burst_update_p: 0.25,
            enter_p: 0.002,
            exit_p: 0.02,
            burst_focus: 32,
        }
    }
}

/// Markov-modulated bursty arrivals: a two-state (calm / bursty) Markov
/// chain modulates both the update intensity and the access locality.
/// Calm traffic is plain Zipf with rare updates; bursts concentrate on a
/// small hot set and churn it hard (the BGP "route flap storm" regime that
/// separates rent-or-buy caching from eager reactive caching).
///
/// Deterministic given `rng`'s seed; state dwell times are geometric
/// (`enter_p` / `exit_p`), giving the on/off Markov-modulated process used
/// by trace-driven caching evaluations.
#[must_use]
pub fn markov_bursty(tree: &Tree, cfg: MarkovBurstyConfig, rng: &mut SplitMix64) -> Vec<Request> {
    let ranked = ranked_nodes(tree, rng);
    let zipf_all = Zipf::new(ranked.len(), cfg.theta);
    let focus = if cfg.burst_focus == 0 { ranked.len() } else { cfg.burst_focus.min(ranked.len()) };
    let zipf_focus = Zipf::new(focus, cfg.theta);
    let mut bursty = false;
    let mut out = Vec::with_capacity(cfg.len);
    while out.len() < cfg.len {
        bursty = if bursty { !rng.chance(cfg.exit_p) } else { rng.chance(cfg.enter_p) };
        let (zipf, update_p) =
            if bursty { (&zipf_focus, cfg.burst_update_p) } else { (&zipf_all, cfg.calm_update_p) };
        let node = ranked[zipf.sample(rng)];
        if rng.chance(update_p) {
            for _ in 0..cfg.alpha {
                out.push(Request::neg(node));
                if out.len() == cfg.len {
                    break;
                }
            }
        } else {
            out.push(Request::pos(node));
        }
    }
    out
}

/// Configuration for the diurnal multi-tenant stream.
#[derive(Debug, Clone, Copy)]
pub struct DiurnalConfig {
    /// Total number of requests to emit (update chunks count α each).
    pub len: usize,
    /// Chunk size for updates (the problem's α).
    pub alpha: u64,
    /// Length of one "day" in emitted requests.
    pub period: usize,
    /// Amplitude of the sinusoidal weight modulation in `[0, 1]`:
    /// a tenant's arrival weight swings between `base·(1 − a)` and
    /// `base·(1 + a)` over a day.
    pub amplitude: f64,
}

impl Default for DiurnalConfig {
    fn default() -> Self {
        Self { len: 100_000, alpha: 4, period: 20_000, amplitude: 0.9 }
    }
}

/// Diurnal tenant churn over a [`Forest`]: like [`multi_tenant_stream`],
/// but each tenant's arrival weight follows a sinusoidal day/night cycle —
/// tenants are phase-shifted evenly around the day, so load migrates
/// around the forest (time zones) — and at the start of each tenant's new
/// day its popularity permutation is re-drawn (yesterday's hot content is
/// not today's). This stresses exactly what a shared caching tier sees:
/// per-shard load that moves and working sets that drift on a slow clock.
///
/// # Panics
/// Panics if `profiles.len() != forest.num_shards()`, if every weight is
/// non-positive, if `amplitude` is outside `[0, 1]`, or if `period == 0`.
#[must_use]
pub fn diurnal_tenant_stream(
    forest: &Forest,
    profiles: &[TenantProfile],
    cfg: DiurnalConfig,
    rng: &mut SplitMix64,
) -> Vec<Request> {
    assert_eq!(profiles.len(), forest.num_shards(), "one tenant profile per forest shard");
    assert!((0.0..=1.0).contains(&cfg.amplitude), "amplitude must be in [0, 1]");
    assert!(cfg.period > 0, "a day has at least one request");
    let base_total: f64 = profiles.iter().map(|p| p.weight.max(0.0)).sum();
    assert!(base_total > 0.0, "at least one tenant needs positive weight");

    let mut rankings = shard_rankings(forest, rng);
    let zipfs: Vec<Zipf> =
        rankings.iter().zip(profiles).map(|(r, p)| Zipf::new(r.len(), p.theta)).collect();
    let shards = profiles.len();
    let mut days: Vec<usize> = vec![0; shards];
    let mut weights: Vec<f64> = vec![0.0; shards];
    let mut out = Vec::with_capacity(cfg.len);
    while out.len() < cfg.len {
        let t = out.len();
        let mut total = 0.0;
        for (s, p) in profiles.iter().enumerate() {
            // Tenant s's local clock is offset by s/shards of a day.
            let phase = t as f64 / cfg.period as f64 + s as f64 / shards as f64;
            let day = (t + s * cfg.period / shards) / cfg.period;
            if day != days[s] {
                // A new day for this tenant: its working set drifts.
                days[s] = day;
                rng.shuffle(&mut rankings[s]);
            }
            let w =
                p.weight.max(0.0) * (1.0 + cfg.amplitude * (phase * std::f64::consts::TAU).sin());
            weights[s] = w.max(0.0);
            total += weights[s];
        }
        // All tenants asleep at once can only happen with amplitude = 1 and
        // pathological phase alignment; nudge the first base-positive
        // tenant awake to keep the stream flowing.
        let s = if total > 0.0 {
            let mut pick = rng.next_f64() * total;
            let mut chosen = weights.iter().rposition(|&w| w > 0.0).expect("positive total");
            for (i, &w) in weights.iter().enumerate() {
                if w <= 0.0 {
                    continue;
                }
                if pick < w {
                    chosen = i;
                    break;
                }
                pick -= w;
            }
            chosen
        } else {
            profiles.iter().position(|p| p.weight > 0.0).expect("positive base weight")
        };
        let node = rankings[s][zipfs[s].sample(rng)];
        if rng.chance(profiles[s].update_p) {
            for _ in 0..cfg.alpha {
                out.push(Request::neg(node));
                if out.len() == cfg.len {
                    break;
                }
            }
        } else {
            out.push(Request::pos(node));
        }
    }
    out
}

/// Per-shard popularity rankings over **global** ids; root replicas of
/// partitioned shards (which all map to the same global root) are kept
/// only in shard 0, where the root keeps its identity.
fn shard_rankings(forest: &Forest, rng: &mut SplitMix64) -> Vec<Vec<NodeId>> {
    use otc_core::forest::ShardId;
    (0..forest.num_shards())
        .map(|s| {
            let sid = ShardId(s as u32);
            let tree = forest.tree(sid);
            let mut nodes: Vec<NodeId> = tree
                .nodes()
                .map(|local| forest.to_global(sid, local))
                .filter(|&g| forest.route(g).0 == sid)
                .collect();
            rng.shuffle(&mut nodes);
            nodes
        })
        .collect()
}

/// All nodes in a random order (popularity ranking).
fn ranked_nodes(tree: &Tree, rng: &mut SplitMix64) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = tree.nodes().collect();
    rng.shuffle(&mut nodes);
    nodes
}

/// Repeats each request of `reqs` `alpha` times (the Appendix C reduction
/// replaces one paging request by α tree-caching requests).
#[must_use]
pub fn amplify(reqs: &[Request], alpha: u64) -> Vec<Request> {
    let mut out = Vec::with_capacity(reqs.len() * alpha as usize);
    for &r in reqs {
        for _ in 0..alpha {
            out.push(r);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use otc_core::tree::Tree;

    #[test]
    fn zipf_positive_shape() {
        let tree = Tree::kary(2, 5);
        let mut rng = SplitMix64::new(1);
        let reqs = zipf_positive(&tree, 5000, 1.0, &mut rng);
        assert_eq!(reqs.len(), 5000);
        assert!(reqs.iter().all(otc_core::Request::is_positive));
        assert!(reqs.iter().all(|r| r.node.index() < tree.len()));
        // Skew: the most frequent node should dominate the least frequent.
        let mut counts = vec![0usize; tree.len()];
        for r in &reqs {
            counts[r.node.index()] += 1;
        }
        counts.sort_unstable();
        assert!(counts[tree.len() - 1] > 10 * counts[0].max(1) / 2);
    }

    #[test]
    fn uniform_mixed_sign_fraction() {
        let tree = Tree::star(20);
        let mut rng = SplitMix64::new(2);
        let reqs = uniform_mixed(&tree, 10_000, 0.3, &mut rng);
        let neg = reqs.iter().filter(|r| !r.is_positive()).count();
        let frac = neg as f64 / reqs.len() as f64;
        assert!((0.25..0.35).contains(&frac), "negative fraction {frac}");
    }

    #[test]
    fn update_chunks_are_contiguous() {
        let tree = Tree::kary(3, 3);
        let mut rng = SplitMix64::new(3);
        let cfg = MixedConfig { len: 4000, theta: 0.9, update_p: 0.2, alpha: 4 };
        let reqs = zipf_with_updates(&tree, cfg, &mut rng);
        assert_eq!(reqs.len(), 4000);
        // Negative requests appear in runs of exactly α to the same node
        // (except possibly a truncated final run).
        let mut i = 0;
        while i < reqs.len() {
            if !reqs[i].is_positive() {
                let node = reqs[i].node;
                let mut run = 0;
                while i < reqs.len() && !reqs[i].is_positive() && reqs[i].node == node && run < 4 {
                    run += 1;
                    i += 1;
                }
                assert!(run == 4 || i == reqs.len(), "negative run of {run} at {i}");
            } else {
                i += 1;
            }
        }
    }

    #[test]
    fn shifting_zipf_changes_hot_set() {
        let tree = Tree::star(200);
        let mut rng = SplitMix64::new(4);
        let epoch = 2000;
        let reqs = shifting_zipf(&tree, 2 * epoch, 1.2, epoch, &mut rng);
        let top = |slice: &[Request]| -> NodeId {
            let mut counts = vec![0usize; tree.len()];
            for r in slice {
                counts[r.node.index()] += 1;
            }
            NodeId(
                counts.iter().enumerate().max_by_key(|&(_, c)| *c).map(|(i, _)| i).unwrap() as u32
            )
        };
        let first = top(&reqs[..epoch]);
        let second = top(&reqs[epoch..]);
        assert_ne!(first, second, "hot node should move across epochs (w.h.p.)");
    }

    #[test]
    fn amplify_repeats() {
        let reqs = vec![Request::pos(NodeId(1)), Request::neg(NodeId(2))];
        let amp = amplify(&reqs, 3);
        assert_eq!(amp.len(), 6);
        assert_eq!(amp[0], amp[2]);
        assert_eq!(amp[3], Request::neg(NodeId(2)));
    }

    #[test]
    fn bursty_updates_touch_related_nodes() {
        let tree = Tree::kary(2, 5);
        let mut rng = SplitMix64::new(6);
        let cfg = MixedConfig { len: 6000, theta: 0.8, update_p: 0.1, alpha: 3 };
        let reqs = zipf_with_bursty_updates(&tree, cfg, 4, &mut rng);
        assert_eq!(reqs.len(), 6000);
        // Group consecutive negatives into α-runs and look at adjacent run
        // pairs. Runs inside one burst target ancestor-related nodes; only
        // pairs straddling two colliding bursts can be unrelated, so the
        // related fraction must dominate (on a random tree of 31 nodes two
        // independent draws are almost never related).
        let mut runs: Vec<(usize, otc_core::tree::NodeId)> = Vec::new();
        let mut i = 0;
        while i < reqs.len() {
            if !reqs[i].is_positive() {
                let node = reqs[i].node;
                let start = i;
                while i < reqs.len() && !reqs[i].is_positive() && reqs[i].node == node {
                    i += 1;
                }
                runs.push((start, node));
            } else {
                i += 1;
            }
        }
        let mut adjacent = 0u32;
        let mut related = 0u32;
        for w in runs.windows(2) {
            let (s0, n0) = w[0];
            let (s1, n1) = w[1];
            // Adjacent runs (no positive request in between) belong to the
            // same negative block.
            if s1 == s0 + 3 && n0 != n1 {
                adjacent += 1;
                if tree.is_ancestor_or_self(n0, n1) || tree.is_ancestor_or_self(n1, n0) {
                    related += 1;
                }
            }
        }
        assert!(adjacent > 20, "expected to observe multi-run negative blocks");
        let frac = f64::from(related) / f64::from(adjacent);
        assert!(frac > 0.6, "bursts should mostly hit related nodes, got {frac}");
    }

    #[test]
    fn generators_are_deterministic() {
        let tree = Tree::kary(2, 4);
        let a = zipf_positive(&tree, 100, 1.0, &mut SplitMix64::new(5));
        let b = zipf_positive(&tree, 100, 1.0, &mut SplitMix64::new(5));
        assert_eq!(a, b);
    }

    #[test]
    fn markov_bursty_modulates_update_density() {
        let tree = Tree::kary(2, 6);
        let mut rng = SplitMix64::new(0xB00);
        let cfg = MarkovBurstyConfig { len: 60_000, alpha: 3, ..MarkovBurstyConfig::default() };
        let reqs = markov_bursty(&tree, cfg, &mut rng);
        assert_eq!(reqs.len(), 60_000);
        assert!(reqs.iter().all(|r| r.node.index() < tree.len()));
        // Overall negative mass sits strictly between the calm and burst
        // rates (the chain spends time in both states)…
        let neg = reqs.iter().filter(|r| !r.is_positive()).count() as f64 / reqs.len() as f64;
        assert!(neg > 0.01 && neg < 0.6, "negative fraction {neg}");
        // …and it arrives *clumped*: windowed update density must be far
        // more dispersed than a Bernoulli process of the same mean. Compare
        // the max windowed rate against the mean rate.
        let window = 1000;
        let rates: Vec<f64> = reqs
            .chunks(window)
            .map(|c| c.iter().filter(|r| !r.is_positive()).count() as f64 / c.len() as f64)
            .collect();
        let max = rates.iter().copied().fold(0.0, f64::max);
        assert!(max > 3.0 * neg, "bursts should concentrate updates: max {max} vs mean {neg}");
        // Deterministic under the same seed.
        let again = markov_bursty(&tree, cfg, &mut SplitMix64::new(0xB00));
        let mut rng2 = SplitMix64::new(0xB00);
        assert_eq!(markov_bursty(&tree, cfg, &mut rng2), again);
    }

    #[test]
    fn diurnal_stream_migrates_load_and_drifts_working_sets() {
        use otc_core::forest::Forest;
        let tree = Tree::star(90);
        let forest = Forest::partition(&tree, 3);
        let profiles = [TenantProfile::skewed(1.0); 3];
        let period = 30_000;
        let cfg = DiurnalConfig { len: period, alpha: 3, period, amplitude: 1.0 };
        let mut rng = SplitMix64::new(0xD1);
        let reqs = diurnal_tenant_stream(&forest, &profiles, cfg, &mut rng);
        assert_eq!(reqs.len(), period);
        assert!(reqs.iter().all(|r| r.node.index() < tree.len()));
        // Tenant 0 peaks in the first quarter of the day and bottoms out in
        // the third quarter (its phase offset is 0): its share of traffic
        // must visibly migrate.
        let quarter = period / 4;
        let share = |slice: &[Request]| {
            slice.iter().filter(|r| forest.route(r.node).0.index() == 0).count() as f64
                / slice.len() as f64
        };
        let peak = share(&reqs[..quarter]);
        let trough = share(&reqs[2 * quarter..3 * quarter]);
        assert!(peak > 2.0 * trough, "diurnal load must migrate: peak {peak} vs trough {trough}");
        // Deterministic under the same seed.
        let again = diurnal_tenant_stream(&forest, &profiles, cfg, &mut SplitMix64::new(0xD1));
        assert_eq!(reqs, again);
    }

    #[test]
    fn diurnal_working_set_redraws_across_days() {
        use otc_core::forest::Forest;
        // One tenant, two days: the hot node must move across the day
        // boundary (w.h.p. on a 200-leaf star).
        let tree = Tree::star(200);
        let forest = Forest::partition(&tree, 1);
        let profiles = [TenantProfile::skewed(1.4)];
        let period = 8_000;
        let cfg = DiurnalConfig { len: 2 * period, alpha: 1, period, amplitude: 0.0 };
        let mut rng = SplitMix64::new(0xDA);
        let reqs = diurnal_tenant_stream(&forest, &profiles, cfg, &mut rng);
        let top = |slice: &[Request]| {
            let mut counts = vec![0usize; tree.len()];
            for r in slice {
                counts[r.node.index()] += 1;
            }
            counts.iter().enumerate().max_by_key(|&(_, c)| *c).map(|(i, _)| i).unwrap()
        };
        assert_ne!(top(&reqs[..period]), top(&reqs[period..]), "hot set should drift across days");
    }

    #[test]
    fn multi_tenant_stream_respects_weights_and_routing() {
        use otc_core::forest::{Forest, ShardId};
        let tree = Tree::star(60);
        let forest = Forest::partition(&tree, 3);
        let profiles = [
            TenantProfile { weight: 6.0, theta: 1.2, update_p: 0.0 },
            TenantProfile { weight: 3.0, theta: 0.6, update_p: 0.1 },
            TenantProfile { weight: 1.0, theta: 0.0, update_p: 0.0 },
        ];
        let mut rng = SplitMix64::new(42);
        let reqs = multi_tenant_stream(&forest, &profiles, 30_000, 3, &mut rng);
        assert_eq!(reqs.len(), 30_000);
        // Every request routes to the shard whose ranking produced it, and
        // heavier tenants see proportionally more traffic.
        let mut per_shard = [0usize; 3];
        for r in &reqs {
            assert!(r.node.index() < tree.len());
            per_shard[forest.route(r.node).0.index()] += 1;
        }
        assert!(per_shard[0] > per_shard[1] && per_shard[1] > per_shard[2], "{per_shard:?}");
        let frac0 = per_shard[0] as f64 / reqs.len() as f64;
        assert!((0.5..0.7).contains(&frac0), "tenant 0 should carry ~60%, got {frac0}");
        // Only tenant 1 churns: negatives exist and target shard 1 alone.
        let negs: Vec<_> = reqs.iter().filter(|r| !r.is_positive()).collect();
        assert!(!negs.is_empty());
        assert!(negs.iter().all(|r| forest.route(r.node).0 == ShardId(1)));
        // Deterministic under the same seed.
        let again = multi_tenant_stream(&forest, &profiles, 30_000, 3, &mut SplitMix64::new(42));
        assert_eq!(reqs, again);
        let mut rng_a = SplitMix64::new(7);
        let mut rng_b = SplitMix64::new(7);
        assert_eq!(
            multi_tenant_stream(&forest, &profiles, 500, 3, &mut rng_a),
            multi_tenant_stream(&forest, &profiles, 500, 3, &mut rng_b)
        );
    }
}
