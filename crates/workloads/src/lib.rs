//! # otc-workloads — trees, request streams, adversaries and paper gadgets
//!
//! Everything the experiments feed to the algorithms:
//!
//! * [`trees`] — random tree generators with height/degree control;
//! * [`requests`] — Zipf traffic, update churn (α-chunked negatives, the
//!   paper's Appendix-B encoding), working-set drift, and multi-tenant
//!   streams over forests (per-shard Zipf skew, globally addressed for
//!   the sharded engine);
//! * [`adversary`] — the adaptive paging adversary of the Ω(R) lower bound
//!   (Appendix C);
//! * [`gadget`] — the Figure 4 / Appendix D positive-field impossibility
//!   construction, scripted end to end.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversary;
pub mod gadget;
pub mod requests;
pub mod search;
pub mod trace;
pub mod trees;

pub use adversary::{drive_paging_adversary, AdversaryRun};
pub use gadget::Fig4Gadget;
pub use requests::{
    amplify, multi_tenant_stream, shifting_zipf, uniform_mixed, zipf_positive,
    zipf_with_bursty_updates, zipf_with_updates, MixedConfig, TenantProfile,
};
pub use search::{adversarial_search, SearchOutcome};
pub use trace::{from_text, to_text};
pub use trees::{broom, random_attachment, random_bounded_degree, random_window};
