//! # otc-workloads — trees, request streams, adversaries and paper gadgets
//!
//! Everything the experiments feed to the algorithms:
//!
//! * [`trees`] — random tree generators with height/degree control;
//! * [`requests`] — Zipf traffic, update churn (α-chunked negatives, the
//!   paper's Appendix-B encoding), working-set drift, Markov-modulated
//!   bursty arrivals, and multi-tenant streams over forests — uniform or
//!   diurnal (per-shard Zipf skew, globally addressed for the sharded
//!   engine);
//! * [`trace`] — persistent workload traces: the versioned binary format
//!   with streaming [`trace::TraceWriter`] / [`trace::TraceReader`], the
//!   human-editable line format, and CSV/JSONL interop;
//! * [`rebalance`] — the rebalance-record codec: per-boundary cell loads
//!   and migration decisions, interleavable with requests in a
//!   [`trace::TRACE_FLAG_REBALANCE`]-flagged trace so a live run's
//!   resharding schedule replays (and verifies) from its own log;
//! * [`wire`] — the shared request-record codec (LEB128 varints, the
//!   `(node << 1) | sign` record payload, sign characters) behind both
//!   the trace formats and the `otc-serve` wire protocol;
//! * [`fib_churn`] — FIB lookup/flap traces synthesized from an
//!   `otc_trie::RuleTree`'s real prefix-containment structure;
//! * [`adversary`] — the adaptive paging adversary of the Ω(R) lower bound
//!   (Appendix C), with its sequences archivable as traces;
//! * [`gadget`] — the Figure 4 / Appendix D positive-field impossibility
//!   construction, scripted end to end.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversary;
pub mod fib_churn;
pub mod gadget;
pub mod rebalance;
pub mod requests;
pub mod search;
pub mod trace;
pub mod trees;
pub mod wire;

pub use adversary::{drive_paging_adversary, AdversaryRun};
pub use fib_churn::{fib_update_trace, FibChurnConfig};
pub use gadget::Fig4Gadget;
pub use rebalance::{CellLoad, RebalanceRecord};
pub use requests::{
    amplify, diurnal_tenant_stream, markov_bursty, multi_tenant_stream, shifting_zipf,
    uniform_mixed, zipf_positive, zipf_with_bursty_updates, zipf_with_updates, DiurnalConfig,
    MarkovBurstyConfig, MixedConfig, TenantProfile,
};
pub use search::{adversarial_search, SearchOutcome};
pub use trace::{
    from_text, to_text, Trace, TraceEvent, TraceHeader, TraceReader, TraceWriter,
    TRACE_FLAG_REBALANCE,
};
pub use trees::{broom, random_attachment, random_bounded_degree, random_window};
