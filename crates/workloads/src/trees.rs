//! Random tree generators.
//!
//! The competitive bound depends on the tree height `h(T)` and the
//! implementation bound on `deg(T)`, so the experiments need shape control:
//!
//! * [`random_attachment`] — uniform recursive trees, height `Θ(log n)`;
//! * [`random_window`] — attachment restricted to the last `w` nodes,
//!   interpolating between a path (`w = 1`) and a recursive tree;
//! * [`random_bounded_degree`] — uniform attachment subject to a degree
//!   cap, for `deg(T)`-scaling experiments;
//! * the canonical shapes (`path`, `star`, `kary`, `caterpillar`) come from
//!   [`otc_core::Tree`] directly.

use otc_core::tree::Tree;
use otc_util::SplitMix64;

/// Uniform random recursive tree: node `i ≥ 1` attaches to a uniformly
/// random earlier node. Expected height `Θ(log n)`.
#[must_use]
pub fn random_attachment(n: usize, rng: &mut SplitMix64) -> Tree {
    assert!(n >= 1);
    let mut parents: Vec<Option<usize>> = Vec::with_capacity(n);
    parents.push(None);
    for i in 1..n {
        parents.push(Some(rng.index(i)));
    }
    Tree::from_parents(&parents)
}

/// Random tree where node `i` attaches to one of the `window` most recent
/// nodes. `window = 1` yields a path; larger windows yield bushier, shorter
/// trees. Height roughly `n / window`-ish for small windows.
#[must_use]
pub fn random_window(n: usize, window: usize, rng: &mut SplitMix64) -> Tree {
    assert!(n >= 1 && window >= 1);
    let mut parents: Vec<Option<usize>> = Vec::with_capacity(n);
    parents.push(None);
    for i in 1..n {
        let lo = i.saturating_sub(window);
        parents.push(Some(lo + rng.index(i - lo)));
    }
    Tree::from_parents(&parents)
}

/// Uniform random attachment with a maximum-degree cap. Nodes at the cap
/// stop accepting children; the generator picks uniformly among nodes with
/// spare capacity.
#[must_use]
pub fn random_bounded_degree(n: usize, max_degree: usize, rng: &mut SplitMix64) -> Tree {
    assert!(n >= 1 && max_degree >= 1);
    let mut parents: Vec<Option<usize>> = Vec::with_capacity(n);
    parents.push(None);
    let mut open: Vec<usize> = vec![0]; // nodes with spare child slots
    let mut degree = vec![0usize; n];
    for i in 1..n {
        let slot = rng.index(open.len());
        let p = open[slot];
        parents.push(Some(p));
        degree[p] += 1;
        if degree[p] >= max_degree {
            open.swap_remove(slot);
        }
        open.push(i);
    }
    Tree::from_parents(&parents)
}

/// A "broom": a spine path of `spine` nodes with `bristles` leaves attached
/// to the deepest spine node. Total size `spine + bristles`. This is the
/// `T1`/`T2` building block of the paper's Figure 4 gadget ("size s with
/// ℓ leaves").
#[must_use]
pub fn broom(spine: usize, bristles: usize) -> Tree {
    assert!(spine >= 1);
    let n = spine + bristles;
    let mut parents: Vec<Option<usize>> = Vec::with_capacity(n);
    parents.push(None);
    for i in 1..spine {
        parents.push(Some(i - 1));
    }
    for _ in 0..bristles {
        parents.push(Some(spine - 1));
    }
    Tree::from_parents(&parents)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attachment_tree_is_valid_and_shallow() {
        let mut rng = SplitMix64::new(1);
        let t = random_attachment(4096, &mut rng);
        assert_eq!(t.len(), 4096);
        // Uniform recursive trees have height ~ e·ln n ≈ 23; allow slack.
        assert!(t.height() < 64, "height {}", t.height());
    }

    #[test]
    fn window_one_is_path() {
        let mut rng = SplitMix64::new(2);
        let t = random_window(64, 1, &mut rng);
        assert_eq!(t.height(), 64);
        assert_eq!(t.max_degree(), 1);
    }

    #[test]
    fn window_interpolates_height() {
        let mut rng = SplitMix64::new(3);
        let deep = random_window(512, 2, &mut rng);
        let shallow = random_window(512, 256, &mut rng);
        assert!(deep.height() > shallow.height());
    }

    #[test]
    fn degree_cap_respected() {
        let mut rng = SplitMix64::new(4);
        for cap in [1usize, 2, 3, 8] {
            let t = random_bounded_degree(300, cap, &mut rng);
            assert!(t.max_degree() as usize <= cap, "cap {cap} violated: {}", t.max_degree());
            assert_eq!(t.len(), 300);
        }
    }

    #[test]
    fn degree_cap_one_is_path() {
        let mut rng = SplitMix64::new(5);
        let t = random_bounded_degree(50, 1, &mut rng);
        assert_eq!(t.height(), 50);
    }

    #[test]
    fn broom_shape() {
        let t = broom(4, 3);
        assert_eq!(t.len(), 7);
        assert_eq!(t.height(), 5);
        assert_eq!(t.leaves().len(), 3);
        // Deepest spine node has all the bristles.
        assert_eq!(t.max_degree(), 3);
    }

    #[test]
    fn broom_degenerate() {
        let t = broom(1, 0);
        assert_eq!(t.len(), 1);
        let t = broom(3, 0);
        assert_eq!(t.height(), 3);
        assert_eq!(t.leaves().len(), 1);
    }

    #[test]
    fn determinism() {
        let a = random_attachment(100, &mut SplitMix64::new(7));
        let b = random_attachment(100, &mut SplitMix64::new(7));
        for v in a.nodes() {
            assert_eq!(a.parent(v), b.parent(v));
        }
    }
}
