//! Request-trace serialization.
//!
//! A dead-simple line format so experiments can persist and replay
//! workloads (and so adversarial sequences found by [`crate::search`] can
//! be archived as regression inputs):
//!
//! ```text
//! # comment lines and blanks are ignored
//! +17        positive request to node 17
//! -4         negative request to node 4
//! ```

use otc_core::request::{Request, Sign};
use otc_core::tree::NodeId;

/// Renders a request sequence in the line format.
#[must_use]
pub fn to_text(requests: &[Request]) -> String {
    let mut out = String::with_capacity(requests.len() * 5);
    for r in requests {
        out.push(if r.sign == Sign::Positive { '+' } else { '-' });
        out.push_str(&r.node.0.to_string());
        out.push('\n');
    }
    out
}

/// Parses the line format back into a request sequence.
///
/// # Errors
/// Reports the first malformed line (1-based line number included).
pub fn from_text(text: &str) -> Result<Vec<Request>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (sign, rest) = match line.split_at(1) {
            ("+", rest) => (Sign::Positive, rest),
            ("-", rest) => (Sign::Negative, rest),
            _ => return Err(format!("line {}: expected '+' or '-', got {line:?}", lineno + 1)),
        };
        let id: u32 =
            rest.parse().map_err(|e| format!("line {}: bad node id {rest:?}: {e}", lineno + 1))?;
        out.push(Request { node: NodeId(id), sign });
    }
    Ok(out)
}

/// Validates that every request in a trace targets a node of the tree.
///
/// # Errors
/// Reports the first out-of-range request.
pub fn validate_for_tree(requests: &[Request], tree: &otc_core::tree::Tree) -> Result<(), String> {
    for (i, r) in requests.iter().enumerate() {
        if r.node.index() >= tree.len() {
            return Err(format!(
                "request {i} targets node {} but the tree has {} nodes",
                r.node,
                tree.len()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let reqs = vec![Request::pos(NodeId(0)), Request::neg(NodeId(42)), Request::pos(NodeId(7))];
        let text = to_text(&reqs);
        assert_eq!(text, "+0\n-42\n+7\n");
        assert_eq!(from_text(&text).unwrap(), reqs);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n+1\n  \n# mid\n-2\n";
        let reqs = from_text(text).unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0], Request::pos(NodeId(1)));
        assert_eq!(reqs[1], Request::neg(NodeId(2)));
    }

    #[test]
    fn malformed_lines_reported_with_position() {
        let err = from_text("+1\nx9\n").unwrap_err();
        assert!(err.contains("line 2"), "got: {err}");
        let err = from_text("+abc\n").unwrap_err();
        assert!(err.contains("bad node id"), "got: {err}");
    }

    #[test]
    fn tree_validation() {
        let tree = otc_core::tree::Tree::star(2);
        let ok = vec![Request::pos(NodeId(2))];
        assert!(validate_for_tree(&ok, &tree).is_ok());
        let bad = vec![Request::pos(NodeId(3))];
        assert!(validate_for_tree(&bad, &tree).is_err());
    }

    #[test]
    fn empty_trace() {
        assert!(from_text("").unwrap().is_empty());
        assert_eq!(to_text(&[]), "");
    }
}
