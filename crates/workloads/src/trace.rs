//! Persistent workload traces.
//!
//! Three interchangeable encodings of one thing — a request sequence with
//! provenance — so any workload can be recorded once and replayed
//! bit-identically across processes and machines:
//!
//! * the **binary format** (`.otct`): a versioned header
//!   ([`TraceHeader`]: universe size, shard map, seed provenance) followed
//!   by LEB128-packed requests. [`TraceWriter`] streams requests out;
//!   [`TraceReader`] streams them back in (it is an `Iterator`), which is
//!   what `ShardedEngine::replay_trace` consumes for file-backed replay
//!   without materialising the whole sequence;
//! * the **line format** (`+17` / `-4`, comments and blanks ignored) —
//!   human-editable, accepted directly by `ShardedEngine::submit_trace`;
//! * **CSV / JSONL interop** ([`to_csv`]/[`from_csv`],
//!   [`to_jsonl`]/[`from_jsonl`]) for external tooling (spreadsheets,
//!   `jq`, pandas).
//!
//! The binary layout is specified normatively in `DESIGN.md` ("The trace
//! format"). All multi-byte integers are **little-endian**; requests are
//! LEB128 varints of `(node_id << 1) | is_negative`, so hot small node ids
//! cost one byte. The record codec itself (varint + request payload +
//! sign characters) lives in [`crate::wire`] and is shared with the
//! `otc-serve` wire protocol — a live service's log is byte-compatible
//! with these readers by construction.
//!
//! A stream whose header sets [`TRACE_FLAG_REBALANCE`] may interleave
//! **rebalance records** ([`crate::rebalance::RebalanceRecord`]) with its
//! requests, escaped by the [`REBALANCE_TAG`] varint — a value no request
//! can encode (its node part overflows `u32`), so unflagged readers
//! reject it as corruption instead of misparsing it. The `Iterator` face
//! of [`TraceReader`] transparently skips rebalance records (a
//! requests-only projection, so [`Trace::load`] and every pre-existing
//! consumer keep working); rebalance-aware consumers call
//! [`TraceReader::next_event`] instead. The header's record count keeps
//! counting **requests only**.

// Codec modules hold the panic-freedom line hardest: a narrowing cast
// or an out-of-bounds index here turns a corrupt trace into a wrong
// answer or a crash. CI runs clippy with -D warnings, so these are
// hard gates for this file.
#![warn(clippy::cast_possible_truncation)]
#![warn(clippy::indexing_slicing)]

use std::io::{self, Read, Seek, SeekFrom, Write};

use otc_core::request::{Request, Sign};
use otc_core::tree::NodeId;

use crate::rebalance::RebalanceRecord;

/// Magic bytes opening every binary trace file.
pub const TRACE_MAGIC: [u8; 4] = *b"OTCT";

/// Current binary format version. Readers reject anything newer; older
/// versions (there are none yet) would be upgraded here.
pub const TRACE_VERSION: u16 = 1;

/// Header flag (bit 0): the stream may interleave rebalance records with
/// its requests. Readers accept flag words of `0` or exactly this bit;
/// any other bit is still a reserved-flags rejection.
pub const TRACE_FLAG_REBALANCE: u16 = 1;

/// Every header flag bit this build understands.
const KNOWN_FLAGS: u16 = TRACE_FLAG_REBALANCE;

/// The varint escaping a rebalance record inside the request body. A
/// request varint is `(node << 1) | sign ≤ 2³³ − 1` (node ids are
/// `u32`), so `2³³` is the smallest value no request can occupy: in an
/// unflagged stream it is already rejected as corruption, which is what
/// makes claiming it backward-safe.
pub const REBALANCE_TAG: u64 = 1 << 33;

/// Record-count sentinel meaning "unknown / stream to EOF" — what a
/// header holds while a [`TraceWriter`] is still open (a crash leaves a
/// readable, EOF-terminated trace).
pub const COUNT_UNKNOWN: u64 = u64::MAX;

/// Hard cap on the shard-map length accepted by the reader: real forests
/// have at most thousands of shards, so anything larger is corruption.
const MAX_SHARDS: u32 = 1 << 20;

/// Hard cap on the generator-name length accepted by the reader.
const MAX_GENERATOR_LEN: u16 = 4096;

/// Provenance header of a binary trace: enough to re-derive the workload
/// (seed + generator name) and to validate a replay target (universe size,
/// shard map) before any request is submitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Size of the global node-id space the requests address. Every record
    /// must satisfy `node < universe`; readers reject violations as
    /// corruption. `0` disables the bound (free-form traces).
    pub universe: u32,
    /// Per-shard tree sizes of the forest the trace was generated for
    /// (informational: partitioned forests replicate the root, so the sum
    /// may exceed `universe`). Empty for single-tree traces.
    pub shard_map: Vec<u32>,
    /// The RNG seed the generating process used (0 when not seed-driven,
    /// e.g. adaptively generated adversarial traces).
    pub seed: u64,
    /// Free-form generator name (`"multi-tenant"`, `"paging-adversary"`,
    /// …) for humans and tooling; at most 4096 bytes of UTF-8.
    pub generator: String,
}

impl TraceHeader {
    /// A header for a single-tree universe of `n` nodes. A universe
    /// beyond `u32::MAX` nodes saturates (node ids are `u32`, so no
    /// such tree can exist to be described).
    #[must_use]
    pub fn single_tree(n: usize, seed: u64, generator: &str) -> Self {
        let n = u32::try_from(n).unwrap_or(u32::MAX);
        Self { universe: n, shard_map: vec![n], seed, generator: generator.to_string() }
    }

    /// Exact byte length of this header's binary encoding, including the
    /// trailing record-count field. The first record of the trace body
    /// starts at this offset from the trace origin — the anchor for
    /// byte-addressed recovery ([`TraceReader::byte_pos`],
    /// [`TraceWriter::resume`]).
    #[must_use]
    pub fn encoded_len(&self) -> u64 {
        // magic + version + flags + universe + seed + shard count
        // + shard sizes + generator length + generator bytes + count.
        (4 + 2 + 2 + 4 + 8 + 4 + 4 * self.shard_map.len() + 2 + self.generator.len() + 8) as u64
    }
}

/// An owned trace: header plus the full request sequence. The convenience
/// carrier for tests, recording helpers and small workloads; streaming
/// producers/consumers use [`TraceWriter`] / [`TraceReader`] directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Provenance and universe metadata.
    pub header: TraceHeader,
    /// The request sequence.
    pub requests: Vec<Request>,
}

impl Trace {
    /// Serializes the trace into the binary format.
    ///
    /// # Errors
    /// Propagates I/O errors from `sink`.
    pub fn save<W: Write + Seek>(&self, sink: W) -> io::Result<W> {
        let mut w = TraceWriter::new(sink, self.header.clone())?;
        for &r in &self.requests {
            w.push(r)?;
        }
        w.finish()
    }

    /// Deserializes a binary trace, materialising every request.
    ///
    /// # Errors
    /// Rejects corrupt headers, truncated bodies, and out-of-universe
    /// records (`io::ErrorKind::InvalidData`).
    pub fn load<R: Read>(src: R) -> io::Result<Self> {
        let mut reader = TraceReader::new(src)?;
        let mut requests = Vec::new();
        for r in &mut reader {
            requests.push(r?);
        }
        Ok(Self { header: reader.into_header(), requests })
    }

    /// The binary encoding as an in-memory byte vector.
    ///
    /// # Panics
    /// Never panics: writing to a `Vec` cannot fail.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        // otc-lint: allow(R3 reason="io::Write/Seek on a Cursor<Vec> is infallible; no input bytes are parsed here")
        self.save(io::Cursor::new(Vec::new())).expect("in-memory write cannot fail").into_inner()
    }

    /// Decodes a trace from its in-memory binary encoding.
    ///
    /// # Errors
    /// Same as [`Trace::load`].
    pub fn from_bytes(bytes: &[u8]) -> io::Result<Self> {
        Self::load(io::Cursor::new(bytes))
    }
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Checks a header's variable-length fields against the format caps and
/// returns them in their exact on-wire widths, so encoding can never
/// truncate: a length that does not fit the wire field is an error here,
/// not a silent `as` cast at the write site.
fn wire_lens(header: &TraceHeader) -> io::Result<(u32, u16)> {
    let num_shards = u32::try_from(header.shard_map.len())
        .ok()
        .filter(|&n| n <= MAX_SHARDS)
        .ok_or_else(|| bad_data("shard map too long"))?;
    let gen_len = u16::try_from(header.generator.len())
        .ok()
        .filter(|&n| n <= MAX_GENERATOR_LEN)
        .ok_or_else(|| bad_data("generator name too long"))?;
    Ok((num_shards, gen_len))
}

/// Streaming binary-trace writer.
///
/// Writes the header immediately (with [`COUNT_UNKNOWN`] as the record
/// count), appends LEB128-packed requests through an internal buffer, and
/// on [`TraceWriter::finish`] seeks back to patch the true record count —
/// so a reader can detect truncation, while a crash mid-write still leaves
/// an EOF-terminated trace that readers accept.
///
/// ```
/// use std::io::Cursor;
/// use otc_core::{Request, tree::NodeId};
/// use otc_workloads::trace::{TraceHeader, TraceReader, TraceWriter};
///
/// let header = TraceHeader::single_tree(8, 42, "doc-example");
/// let mut w = TraceWriter::new(Cursor::new(Vec::new()), header.clone()).unwrap();
/// w.push(Request::pos(NodeId(3))).unwrap();
/// w.push(Request::neg(NodeId(7))).unwrap();
/// let bytes = w.finish().unwrap().into_inner();
///
/// let mut r = TraceReader::new(Cursor::new(bytes)).unwrap();
/// assert_eq!(r.header(), &header);
/// assert_eq!(r.remaining(), Some(2));
/// let back: Vec<Request> = r.map(Result::unwrap).collect();
/// assert_eq!(back, vec![Request::pos(NodeId(3)), Request::neg(NodeId(7))]);
/// ```
pub struct TraceWriter<W: Write + Seek> {
    sink: W,
    header: TraceHeader,
    /// Header flag word; [`TraceWriter::push_rebalance`] requires
    /// [`TRACE_FLAG_REBALANCE`] here.
    flags: u16,
    /// Small write-combining buffer so per-request pushes don't hit the
    /// sink syscall-by-syscall.
    buf: Vec<u8>,
    count: u64,
    /// Byte offset of the record-count field, patched by `finish`.
    count_pos: u64,
    /// Encoded body bytes so far, buffered or written. The next record
    /// lands at `count_pos + 8 + body_bytes` in the sink.
    body_bytes: u64,
}

/// Flush threshold for the writer's internal buffer.
const WRITER_BUF: usize = 16 * 1024;

impl<W: Write + Seek> TraceWriter<W> {
    /// Opens a writer over `sink`, writing the header immediately (flag
    /// word zero: a plain request-only trace).
    ///
    /// # Errors
    /// Propagates I/O errors; rejects generator names longer than 4096
    /// bytes and shard maps longer than 2²⁰ entries.
    pub fn new(sink: W, header: TraceHeader) -> io::Result<Self> {
        Self::with_flags(sink, header, 0)
    }

    /// Opens a writer whose header carries `flags` — pass
    /// [`TRACE_FLAG_REBALANCE`] to make the stream rebalance-capable
    /// (required before [`TraceWriter::push_rebalance`]).
    ///
    /// # Errors
    /// Everything [`TraceWriter::new`] rejects, plus flag bits this build
    /// does not define.
    pub fn with_flags(mut sink: W, header: TraceHeader, flags: u16) -> io::Result<Self> {
        if flags & !KNOWN_FLAGS != 0 {
            return Err(bad_data(format!("unknown trace flags: {flags:#06x}")));
        }
        let (num_shards, gen_len) = wire_lens(&header)?;
        // The sink need not start at position 0 (appending after a
        // preamble or an earlier trace is legal): all patch offsets are
        // relative to where this trace begins.
        let origin = sink.stream_position()?;
        let mut buf = Vec::with_capacity(WRITER_BUF + 10);
        buf.extend_from_slice(&TRACE_MAGIC);
        buf.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        buf.extend_from_slice(&flags.to_le_bytes());
        buf.extend_from_slice(&header.universe.to_le_bytes());
        buf.extend_from_slice(&header.seed.to_le_bytes());
        buf.extend_from_slice(&num_shards.to_le_bytes());
        for &s in &header.shard_map {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        buf.extend_from_slice(&gen_len.to_le_bytes());
        buf.extend_from_slice(header.generator.as_bytes());
        let count_pos = origin + buf.len() as u64;
        buf.extend_from_slice(&COUNT_UNKNOWN.to_le_bytes());
        sink.write_all(&buf)?;
        buf.clear();
        Ok(Self { sink, header, flags, buf, count: 0, count_pos, body_bytes: 0 })
    }

    /// Reopens a writer over the good prefix of an existing trace after a
    /// crash, so recovered services append where replay stopped.
    ///
    /// `origin` is the byte offset of the trace's start within the sink
    /// (`0` for a plain log file) and `count` the number of records the
    /// prefix holds; the caller must have truncated the sink to the end of
    /// the good prefix (e.g. [`TraceReader::byte_pos`] after replay). The
    /// record count in the header is immediately re-stamped to
    /// [`COUNT_UNKNOWN`]: a gracefully finished log carries a patched
    /// count that would otherwise hide post-resume appends from readers if
    /// the process crashes again before [`TraceWriter::finish`].
    ///
    /// # Errors
    /// Propagates I/O errors; rejects headers [`TraceWriter::new`] would
    /// reject and sinks shorter than `origin` plus the header.
    pub fn resume(sink: W, header: TraceHeader, origin: u64, count: u64) -> io::Result<Self> {
        Self::resume_with_flags(sink, header, origin, count, 0)
    }

    /// [`TraceWriter::resume`] for a stream whose header carries `flags`
    /// (as reported by [`TraceReader::flags`] during the recovery scan).
    /// The on-disk flag word is not rewritten — it was stamped when the
    /// log was created; the writer only needs to know it to keep
    /// accepting [`TraceWriter::push_rebalance`] after resume.
    ///
    /// # Errors
    /// Everything [`TraceWriter::resume`] rejects, plus unknown flag
    /// bits.
    pub fn resume_with_flags(
        mut sink: W,
        header: TraceHeader,
        origin: u64,
        count: u64,
        flags: u16,
    ) -> io::Result<Self> {
        if flags & !KNOWN_FLAGS != 0 {
            return Err(bad_data(format!("unknown trace flags: {flags:#06x}")));
        }
        wire_lens(&header)?;
        let count_pos = origin + header.encoded_len() - 8;
        let end = sink.seek(SeekFrom::End(0))?;
        let Some(body_bytes) = end.checked_sub(count_pos + 8) else {
            return Err(bad_data(format!(
                "trace sink ends at {end}, before the header ending at {}",
                count_pos + 8
            )));
        };
        sink.seek(SeekFrom::Start(count_pos))?;
        sink.write_all(&COUNT_UNKNOWN.to_le_bytes())?;
        sink.seek(SeekFrom::End(0))?;
        sink.flush()?;
        let buf = Vec::with_capacity(WRITER_BUF + 10);
        Ok(Self { sink, header, flags, buf, count, count_pos, body_bytes })
    }

    /// The header this writer opened with.
    #[must_use]
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Requests written so far (rebalance records are never counted).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The header flag word this writer opened with.
    #[must_use]
    pub fn flags(&self) -> u16 {
        self.flags
    }

    /// Appends one request.
    ///
    /// # Errors
    /// Rejects nodes outside the header's universe (when `universe > 0`);
    /// propagates I/O errors when the internal buffer flushes.
    pub fn push(&mut self, req: Request) -> io::Result<()> {
        if self.header.universe > 0 && req.node.0 >= self.header.universe {
            return Err(bad_data(format!(
                "request targets node {} outside the declared universe of {}",
                req.node, self.header.universe
            )));
        }
        let before = self.buf.len();
        crate::wire::encode_request(&mut self.buf, req);
        self.body_bytes += (self.buf.len() - before) as u64;
        self.count += 1;
        if self.buf.len() >= WRITER_BUF {
            self.sink.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Appends one rebalance record ([`REBALANCE_TAG`] + framed payload)
    /// at the current stream position. Does **not** advance the request
    /// count — the header count keeps meaning "requests", so request-only
    /// consumers and snapshot cut arithmetic are unaffected.
    ///
    /// # Errors
    /// Rejected unless the writer opened with [`TRACE_FLAG_REBALANCE`]
    /// (an unflagged reader would refuse the record as corruption);
    /// propagates I/O errors when the internal buffer flushes.
    pub fn push_rebalance(&mut self, record: &RebalanceRecord) -> io::Result<()> {
        if self.flags & TRACE_FLAG_REBALANCE == 0 {
            return Err(bad_data(
                "rebalance records require a TRACE_FLAG_REBALANCE header \
                 (open the writer with TraceWriter::with_flags)",
            ));
        }
        let before = self.buf.len();
        crate::wire::encode_varint(&mut self.buf, REBALANCE_TAG);
        record.write_framed(&mut self.buf);
        self.body_bytes += (self.buf.len() - before) as u64;
        if self.buf.len() >= WRITER_BUF {
            self.sink.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Absolute sink offset where the next record will land —
    /// equivalently, the end of the encoding of everything pushed so far.
    /// For a trace starting at sink position 0 this matches
    /// [`TraceReader::byte_pos`] after reading the same records; snapshot
    /// cuts pair it with [`TraceWriter::count`] to address the log
    /// position a snapshot corresponds to.
    #[must_use]
    pub fn stream_offset(&self) -> u64 {
        self.count_pos + 8 + self.body_bytes
    }

    /// Writes every buffered record through to the sink and flushes it,
    /// without finishing the trace: after `sync` the sink's bytes are an
    /// EOF-terminated trace containing exactly the records pushed so far.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn sync(&mut self) -> io::Result<()> {
        self.sink.write_all(&self.buf)?;
        self.buf.clear();
        self.sink.flush()
    }

    /// Flushes the body, patches the record count into the header, and
    /// returns the sink (positioned at the end of the trace).
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.write_all(&self.buf)?;
        self.sink.seek(SeekFrom::Start(self.count_pos))?;
        self.sink.write_all(&self.count.to_le_bytes())?;
        self.sink.seek(SeekFrom::End(0))?;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Counts the bytes the parser actually consumes. Wrapped *around* the
/// `BufReader` (not inside it), so read-ahead buffering never inflates
/// the count: [`TraceReader::byte_pos`] is exactly the encoded length of
/// everything parsed so far. The varint decoder accepts non-minimal
/// encodings, so re-encoding parsed values cannot measure this — only
/// counting the source bytes can.
struct CountingReader<R: Read> {
    inner: R,
    consumed: u64,
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.consumed += n as u64;
        Ok(n)
    }
}

/// One record of a binary trace body, as yielded by
/// [`TraceReader::next_event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A request record.
    Request(Request),
    /// A rebalance decision record (only in streams flagged with
    /// [`TRACE_FLAG_REBALANCE`]).
    Rebalance(RebalanceRecord),
}

/// Streaming binary-trace reader: validates the header on construction,
/// then yields requests as an `Iterator` (so replay never materialises the
/// whole sequence). See [`TraceWriter`] for a round-trip example.
///
/// The `Iterator` face is a **requests-only projection**: rebalance
/// records in a flagged stream are decoded, validated and skipped.
/// Rebalance-aware consumers use [`TraceReader::next_event`].
pub struct TraceReader<R: Read> {
    src: CountingReader<io::BufReader<R>>,
    header: TraceHeader,
    /// Header flag word (`0` or [`TRACE_FLAG_REBALANCE`]).
    flags: u16,
    /// Records the header promises (`None` when the writer never
    /// finished — stream to EOF).
    declared: Option<u64>,
    yielded: u64,
    failed: bool,
    /// Bytes consumed up to the end of the last successfully yielded
    /// record (or the header) — unlike `src.consumed`, never advanced by
    /// the partial bytes of a torn or rejected record.
    good_pos: u64,
}

impl<R: Read> TraceReader<R> {
    /// Opens a reader, parsing and validating the header.
    ///
    /// # Errors
    /// `io::ErrorKind::InvalidData` on bad magic, unknown version,
    /// non-zero reserved flags, oversized shard map or generator name, or
    /// non-UTF-8 generator bytes; `UnexpectedEof` on truncated headers.
    pub fn new(src: R) -> io::Result<Self> {
        let mut src = CountingReader { inner: io::BufReader::new(src), consumed: 0 };
        let mut magic = [0u8; 4];
        src.read_exact(&mut magic)?;
        if magic != TRACE_MAGIC {
            return Err(bad_data(format!("bad magic {magic:?}, expected {TRACE_MAGIC:?}")));
        }
        let version = read_u16(&mut src)?;
        if version != TRACE_VERSION {
            return Err(bad_data(format!(
                "unsupported trace version {version} (this build reads {TRACE_VERSION})"
            )));
        }
        let flags = read_u16(&mut src)?;
        if flags & !KNOWN_FLAGS != 0 {
            return Err(bad_data(format!("reserved flags set: {flags:#06x}")));
        }
        let universe = read_u32(&mut src)?;
        let seed = read_u64(&mut src)?;
        let num_shards = read_u32(&mut src)?;
        if num_shards > MAX_SHARDS {
            return Err(bad_data(format!("implausible shard count {num_shards}")));
        }
        let mut shard_map = Vec::with_capacity(num_shards as usize);
        for _ in 0..num_shards {
            shard_map.push(read_u32(&mut src)?);
        }
        let gen_len = read_u16(&mut src)?;
        if gen_len > MAX_GENERATOR_LEN {
            return Err(bad_data(format!("implausible generator-name length {gen_len}")));
        }
        let mut gen_bytes = vec![0u8; gen_len as usize];
        src.read_exact(&mut gen_bytes)?;
        let generator =
            String::from_utf8(gen_bytes).map_err(|_| bad_data("generator name is not UTF-8"))?;
        let count = read_u64(&mut src)?;
        let declared = (count != COUNT_UNKNOWN).then_some(count);
        let good_pos = src.consumed;
        Ok(Self {
            src,
            header: TraceHeader { universe, shard_map, seed, generator },
            flags,
            declared,
            yielded: 0,
            failed: false,
            good_pos,
        })
    }

    /// The validated header.
    #[must_use]
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// The header flag word.
    #[must_use]
    pub fn flags(&self) -> u16 {
        self.flags
    }

    /// Whether the stream may carry rebalance records
    /// ([`TRACE_FLAG_REBALANCE`] set).
    #[must_use]
    pub fn rebalance_capable(&self) -> bool {
        self.flags & TRACE_FLAG_REBALANCE != 0
    }

    /// Consumes the reader, keeping only the header.
    #[must_use]
    pub fn into_header(self) -> TraceHeader {
        self.header
    }

    /// Requests still to come, when the header declared a count (`None`
    /// for unfinished, EOF-terminated traces).
    #[must_use]
    pub fn remaining(&self) -> Option<u64> {
        self.declared.map(|d| d.saturating_sub(self.yielded))
    }

    /// Requests yielded so far.
    #[must_use]
    pub fn records_read(&self) -> u64 {
        self.yielded
    }

    /// Byte offset (from the reader's origin) of the end of the last
    /// record yielded: exactly the bytes consumed parsing the header and
    /// every successful record. A torn or rejected record never advances
    /// it, so after a trailing `UnexpectedEof` this is the end of the good
    /// prefix a torn log recovers to ([`TraceWriter::resume`] appends
    /// there after the caller truncates).
    #[must_use]
    pub fn byte_pos(&self) -> u64 {
        self.good_pos
    }

    /// Yields the next body record — request or rebalance — or `None`
    /// at the end of the stream. This is the full view of the body; the
    /// `Iterator` face filters it down to requests.
    ///
    /// A rebalance record may legally trail the final request (a
    /// decision boundary at the exact end of a run), so a declared-count
    /// stream keeps yielding rebalance records — but no more requests —
    /// after the count is exhausted.
    ///
    /// # Errors
    /// `UnexpectedEof` on truncation inside a record (the torn record
    /// never advances [`TraceReader::byte_pos`]); `InvalidData` on
    /// out-of-universe requests, a [`REBALANCE_TAG`] in an unflagged
    /// stream, request records beyond the declared count, and every
    /// corruption [`crate::wire`] rejects.
    pub fn next_event(&mut self) -> io::Result<Option<TraceEvent>> {
        let requests_done = self.declared.is_some_and(|d| self.yielded >= d);
        // The shared record codec ([`crate::wire`]): a clean EOF before
        // the first byte ends the stream; truncation inside a record and
        // overflowing varints are rejected there.
        let Some(value) = crate::wire::decode_varint(&mut self.src)? else {
            if self.declared.is_none() || requests_done {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("trace truncated after {} records", self.yielded),
            ));
        };
        if value == REBALANCE_TAG {
            if self.flags & TRACE_FLAG_REBALANCE == 0 {
                return Err(bad_data(
                    "rebalance record in a stream whose header does not set \
                     TRACE_FLAG_REBALANCE",
                ));
            }
            let record = RebalanceRecord::read_framed(&mut self.src)?;
            self.good_pos = self.src.consumed;
            return Ok(Some(TraceEvent::Rebalance(record)));
        }
        if requests_done {
            return Err(bad_data(format!(
                "request record beyond the declared count of {}",
                self.yielded
            )));
        }
        let req = crate::wire::request_from_varint(value)?;
        if self.header.universe > 0 && req.node.0 >= self.header.universe {
            return Err(bad_data(format!(
                "record {} targets node {} outside the declared universe of {}",
                self.yielded, req.node, self.header.universe
            )));
        }
        self.yielded += 1;
        self.good_pos = self.src.consumed;
        Ok(Some(TraceEvent::Request(req)))
    }

    fn next_request(&mut self) -> io::Result<Option<Request>> {
        loop {
            match self.next_event()? {
                Some(TraceEvent::Request(req)) => return Ok(Some(req)),
                Some(TraceEvent::Rebalance(_)) => {}
                None => return Ok(None),
            }
        }
    }
}

impl<R: Read + Seek> TraceReader<R> {
    /// Repositions the reader at `byte_pos` (an offset previously reported
    /// by [`TraceReader::byte_pos`], or recorded by a snapshot via
    /// [`TraceWriter::stream_offset`]), declaring that `records_before`
    /// records precede it. Recovery uses this to skip the log prefix a
    /// snapshot already covers and replay only the tail.
    ///
    /// # Errors
    /// Propagates I/O errors from the underlying seek.
    pub fn seek_to(&mut self, byte_pos: u64, records_before: u64) -> io::Result<()> {
        let delta = byte_pos as i64 - self.src.consumed as i64;
        self.src.inner.seek_relative(delta)?;
        self.src.consumed = byte_pos;
        self.good_pos = byte_pos;
        self.yielded = records_before;
        self.failed = false;
        Ok(())
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = io::Result<Request>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.next_request() {
            Ok(Some(r)) => Some(Ok(r)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

fn read_u16<R: Read>(src: &mut R) -> io::Result<u16> {
    let mut b = [0u8; 2];
    src.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn read_u32<R: Read>(src: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    src.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(src: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    src.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

// ---------------------------------------------------------------------------
// The line format (the original human-editable encoding).

/// Renders a request sequence in the line format (`+id` / `-id`).
#[must_use]
pub fn to_text(requests: &[Request]) -> String {
    let mut out = String::with_capacity(requests.len() * 5);
    for r in requests {
        out.push(crate::wire::sign_char(r.sign));
        out.push_str(&r.node.0.to_string());
        out.push('\n');
    }
    out
}

/// Parses the line format back into a request sequence.
///
/// # Errors
/// Reports the first malformed line (1-based line number included).
pub fn from_text(text: &str) -> Result<Vec<Request>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // `get` (not `split_at`) so a multi-byte first character is a
        // reported parse error rather than a char-boundary panic.
        let Some(sign) = line.get(..1).and_then(crate::wire::parse_sign) else {
            return Err(format!("line {}: expected '+' or '-', got {line:?}", lineno + 1));
        };
        let rest = &line[1..];
        let id: u32 =
            rest.parse().map_err(|e| format!("line {}: bad node id {rest:?}: {e}", lineno + 1))?;
        out.push(Request { node: NodeId(id), sign });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// CSV / JSONL interop.

/// Renders a request sequence as CSV (`round,sign,node` with a header
/// row) for spreadsheets and dataframe tooling.
#[must_use]
pub fn to_csv(requests: &[Request]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(requests.len() * 10 + 16);
    out.push_str("round,sign,node\n");
    for (i, r) in requests.iter().enumerate() {
        let sign = crate::wire::sign_char(r.sign);
        // fmt::Write to a String is infallible; discard the Ok(()).
        let _ = writeln!(out, "{i},{sign},{}", r.node.0);
    }
    out
}

/// Parses the CSV rendering of [`to_csv`] (header row required; the
/// `round` column is ignored, order is positional).
///
/// # Errors
/// Reports the first malformed row (1-based line number included).
pub fn from_csv(text: &str) -> Result<Vec<Request>, String> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, header)) if header.trim() == "round,sign,node" => {}
        Some((_, header)) => return Err(format!("bad CSV header {header:?}")),
        None => return Ok(Vec::new()),
    }
    let mut out = Vec::new();
    for (lineno, raw) in lines {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let mut cols = line.split(',');
        let (Some(_round), Some(sign), Some(node), None) =
            (cols.next(), cols.next(), cols.next(), cols.next())
        else {
            return Err(format!("line {}: expected 3 columns, got {line:?}", lineno + 1));
        };
        let sign = crate::wire::parse_sign(sign.trim())
            .ok_or_else(|| format!("line {}: bad sign {:?}", lineno + 1, sign.trim()))?;
        let id: u32 = node
            .trim()
            .parse()
            .map_err(|e| format!("line {}: bad node id {node:?}: {e}", lineno + 1))?;
        out.push(Request { node: NodeId(id), sign });
    }
    Ok(out)
}

/// Renders a request sequence as JSON Lines: one
/// `{"node":17,"sign":"+"}` object per line.
#[must_use]
pub fn to_jsonl(requests: &[Request]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(requests.len() * 24);
    for r in requests {
        let sign = crate::wire::sign_char(r.sign);
        // fmt::Write to a String is infallible; discard the Ok(()).
        let _ = writeln!(out, "{{\"node\":{},\"sign\":\"{sign}\"}}", r.node.0);
    }
    out
}

/// Parses the JSONL rendering of [`to_jsonl`] (field order free, blank
/// lines skipped).
///
/// # Errors
/// Reports the first malformed line (1-based line number included).
pub fn from_jsonl(text: &str) -> Result<Vec<Request>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let inner = line
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(|| format!("line {}: not a JSON object: {line:?}", lineno + 1))?;
        let mut node: Option<u32> = None;
        let mut sign: Option<Sign> = None;
        for field in inner.split(',') {
            let (key, value) = field
                .split_once(':')
                .ok_or_else(|| format!("line {}: bad field {field:?}", lineno + 1))?;
            match key.trim().trim_matches('"') {
                "node" => {
                    node =
                        Some(value.trim().parse().map_err(|e| {
                            format!("line {}: bad node id {value:?}: {e}", lineno + 1)
                        })?);
                }
                "sign" => {
                    let raw = value.trim().trim_matches('"');
                    sign = Some(
                        crate::wire::parse_sign(raw)
                            .ok_or_else(|| format!("line {}: bad sign {raw:?}", lineno + 1))?,
                    );
                }
                other => return Err(format!("line {}: unknown field {other:?}", lineno + 1)),
            }
        }
        let (Some(node), Some(sign)) = (node, sign) else {
            return Err(format!("line {}: missing node or sign", lineno + 1));
        };
        out.push(Request { node: NodeId(node), sign });
    }
    Ok(out)
}

/// Validates that every request in a trace targets a node of the tree.
///
/// # Errors
/// Reports the first out-of-range request.
pub fn validate_for_tree(requests: &[Request], tree: &otc_core::tree::Tree) -> Result<(), String> {
    for (i, r) in requests.iter().enumerate() {
        if r.node.index() >= tree.len() {
            return Err(format!(
                "request {i} targets node {} but the tree has {} nodes",
                r.node,
                tree.len()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
#[allow(
    clippy::indexing_slicing,
    clippy::cast_possible_truncation,
    reason = "tests index and truncate fixture buffers they just built; a panic here is a failing test, not a service crash"
)]
mod tests {
    use super::*;

    fn sample() -> Vec<Request> {
        vec![Request::pos(NodeId(0)), Request::neg(NodeId(42)), Request::pos(NodeId(7))]
    }

    #[test]
    fn roundtrip() {
        let reqs = sample();
        let text = to_text(&reqs);
        assert_eq!(text, "+0\n-42\n+7\n");
        assert_eq!(from_text(&text).unwrap(), reqs);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n+1\n  \n# mid\n-2\n";
        let reqs = from_text(text).unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0], Request::pos(NodeId(1)));
        assert_eq!(reqs[1], Request::neg(NodeId(2)));
    }

    #[test]
    fn malformed_lines_reported_with_position() {
        let err = from_text("+1\nx9\n").unwrap_err();
        assert!(err.contains("line 2"), "got: {err}");
        let err = from_text("+abc\n").unwrap_err();
        assert!(err.contains("bad node id"), "got: {err}");
    }

    #[test]
    fn tree_validation() {
        let tree = otc_core::tree::Tree::star(2);
        let ok = vec![Request::pos(NodeId(2))];
        assert!(validate_for_tree(&ok, &tree).is_ok());
        let bad = vec![Request::pos(NodeId(3))];
        assert!(validate_for_tree(&bad, &tree).is_err());
    }

    #[test]
    fn empty_trace() {
        assert!(from_text("").unwrap().is_empty());
        assert_eq!(to_text(&[]), "");
    }

    #[test]
    fn binary_round_trip() {
        let trace =
            Trace { header: TraceHeader::single_tree(64, 0xFEED, "unit"), requests: sample() };
        let bytes = trace.to_bytes();
        let back = Trace::from_bytes(&bytes).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn binary_header_survives_empty_body() {
        let header = TraceHeader {
            universe: 0,
            shard_map: vec![3, 4, 5],
            seed: 9,
            generator: String::new(),
        };
        let trace = Trace { header: header.clone(), requests: Vec::new() };
        let back = Trace::from_bytes(&trace.to_bytes()).unwrap();
        assert_eq!(back.header, header);
        assert!(back.requests.is_empty());
    }

    #[test]
    fn small_ids_encode_to_one_byte() {
        let reqs = vec![Request::pos(NodeId(63)); 1000];
        let trace = Trace { header: TraceHeader::single_tree(64, 0, "dense"), requests: reqs };
        let bytes = trace.to_bytes();
        // Header is well under 100 bytes; each record is exactly 1 byte.
        assert!(bytes.len() < 1000 + 100, "encoding is not compact: {} bytes", bytes.len());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes =
            Trace { header: TraceHeader::single_tree(4, 0, "x"), requests: sample_in(4) }
                .to_bytes();
        bytes[0] = b'X';
        let err = Trace::from_bytes(&bytes).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("magic"), "got: {err}");
    }

    fn sample_in(universe: u32) -> Vec<Request> {
        vec![Request::pos(NodeId(0)), Request::neg(NodeId(universe - 1))]
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes =
            Trace { header: TraceHeader::single_tree(4, 0, "x"), requests: sample_in(4) }
                .to_bytes();
        bytes[4] = 0xFF; // version low byte
        let err = Trace::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "got: {err}");
    }

    #[test]
    fn truncated_body_rejected() {
        let bytes = Trace { header: TraceHeader::single_tree(4, 0, "x"), requests: sample_in(4) }
            .to_bytes();
        let err = Trace::from_bytes(&bytes[..bytes.len() - 1]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn out_of_universe_record_rejected_on_read_and_write() {
        let header = TraceHeader::single_tree(4, 0, "x");
        let mut w = TraceWriter::new(io::Cursor::new(Vec::new()), header.clone()).unwrap();
        assert!(w.push(Request::pos(NodeId(4))).is_err(), "writer must enforce the universe");
        // Forge a trace claiming universe 2 around an id-3 record.
        let forged = Trace {
            header: TraceHeader::single_tree(4, 0, "x"),
            requests: vec![Request::pos(NodeId(3))],
        }
        .to_bytes();
        let mut bytes = forged;
        // universe field sits at offset 8 (magic 4 + version 2 + flags 2).
        bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
        let err = Trace::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("universe"), "got: {err}");
    }

    #[test]
    fn varint_overflow_bits_are_rejected_not_dropped() {
        // A forged 10-byte varint whose final group carries bits beyond
        // u64: [0x81, 0x80×8, 0x02] would decode to 1 if the overflow
        // bits were silently shifted out. It must be rejected.
        let empty = Trace {
            header: TraceHeader {
                universe: 0,
                shard_map: vec![],
                seed: 0,
                generator: String::new(),
            },
            requests: vec![],
        };
        let mut bytes = empty.to_bytes();
        let n = bytes.len();
        bytes[n - 8..].copy_from_slice(&1u64.to_le_bytes()); // claim 1 record
        bytes.extend_from_slice(&[0x81, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02]);
        let err = Trace::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("overflows"), "got: {err}");
        // An 11-byte varint (too many continuation groups) is rejected too.
        let mut bytes2 = empty.to_bytes();
        let n = bytes2.len();
        bytes2[n - 8..].copy_from_slice(&1u64.to_le_bytes());
        bytes2.extend_from_slice(&[0x80; 10]);
        bytes2.push(0x01);
        let err = Trace::from_bytes(&bytes2).unwrap_err();
        assert!(err.to_string().contains("overflows"), "got: {err}");
    }

    #[test]
    fn unfinished_writer_streams_to_eof() {
        // Simulate a crash: serialize, then restore the count field to the
        // sentinel — the reader must fall back to EOF-terminated streaming.
        let trace = Trace { header: TraceHeader::single_tree(64, 1, "crashy"), requests: sample() };
        let mut bytes = trace.to_bytes();
        let count_pos = bytes.len() - 3 /* records: +0, -42, +7 — one byte each */ - 8;
        bytes[count_pos..count_pos + 8].copy_from_slice(&COUNT_UNKNOWN.to_le_bytes());
        let mut r = TraceReader::new(io::Cursor::new(bytes)).unwrap();
        assert_eq!(r.remaining(), None);
        let back: Vec<Request> = (&mut r).map(Result::unwrap).collect();
        assert_eq!(back, trace.requests);
    }

    #[test]
    fn writer_respects_a_non_zero_sink_origin() {
        // Appending a trace after a preamble (or a previous trace) must
        // patch the count inside *this* trace's header, not at an
        // absolute offset near the file start.
        let preamble = b"PREAMBLE-BYTES--";
        let mut sink = io::Cursor::new(Vec::new());
        sink.write_all(preamble).unwrap();
        let mut w = TraceWriter::new(sink, TraceHeader::single_tree(64, 5, "appended")).unwrap();
        for r in sample() {
            w.push(r).unwrap();
        }
        let bytes = w.finish().unwrap().into_inner();
        assert_eq!(&bytes[..preamble.len()], preamble, "the preamble must be untouched");
        let back = Trace::load(io::Cursor::new(&bytes[preamble.len()..])).unwrap();
        assert_eq!(back.requests, sample());
        // The count was really patched: a declared-count reader reports it.
        let mut r = TraceReader::new(io::Cursor::new(&bytes[preamble.len()..])).unwrap();
        assert_eq!(r.remaining(), Some(3));
        assert!(r.all(|x| x.is_ok()));
    }

    #[test]
    fn byte_pos_counts_header_and_records_exactly() {
        let header = TraceHeader::single_tree(1 << 20, 3, "offsets");
        let reqs = vec![
            Request::pos(NodeId(1)),       // 1 byte
            Request::neg(NodeId(100)),     // 2 bytes
            Request::pos(NodeId(100_000)), // 3 bytes
        ];
        let trace = Trace { header: header.clone(), requests: reqs.clone() };
        let bytes = trace.to_bytes();
        let mut r = TraceReader::new(io::Cursor::new(&bytes)).unwrap();
        assert_eq!(r.byte_pos(), header.encoded_len(), "header length is exact");
        let mut expect = header.encoded_len();
        for (req, len) in reqs.iter().zip([1u64, 2, 3]) {
            assert_eq!(r.next().unwrap().unwrap(), *req);
            expect += len;
            assert_eq!(r.byte_pos(), expect);
        }
        assert_eq!(expect, bytes.len() as u64, "whole body accounted for");
        assert_eq!(r.records_read(), 3);
    }

    #[test]
    fn seek_to_replays_only_the_tail() {
        let header = TraceHeader::single_tree(1 << 10, 0, "seek");
        let reqs: Vec<Request> = (0..50u32)
            .map(|i| Request { node: NodeId(i * 7 % 1000), sign: Sign::Positive })
            .collect();
        let bytes = Trace { header, requests: reqs.clone() }.to_bytes();
        // Read a prefix, remember the position.
        let mut r = TraceReader::new(io::Cursor::new(&bytes)).unwrap();
        for _ in 0..20 {
            r.next().unwrap().unwrap();
        }
        let (pos, n) = (r.byte_pos(), r.records_read());
        // A fresh reader seeks straight there and yields exactly the tail.
        let mut r2 = TraceReader::new(io::Cursor::new(&bytes)).unwrap();
        r2.seek_to(pos, n).unwrap();
        let tail: Vec<Request> = (&mut r2).map(Result::unwrap).collect();
        assert_eq!(tail, reqs[20..]);
        assert_eq!(r2.records_read(), 50);
        // Seeking backwards works too.
        r2.seek_to(pos, n).unwrap();
        assert_eq!(r2.next().unwrap().unwrap(), reqs[20]);
    }

    #[test]
    fn sync_exposes_an_eof_terminated_prefix() {
        let header = TraceHeader::single_tree(256, 0, "sync");
        let mut w = TraceWriter::new(io::Cursor::new(Vec::new()), header.clone()).unwrap();
        w.push(Request::pos(NodeId(3))).unwrap();
        w.push(Request::neg(NodeId(200))).unwrap();
        w.sync().unwrap();
        assert_eq!(w.stream_offset(), header.encoded_len() + 1 + 2);
        // A kill -9 here leaves exactly the synced bytes on disk.
        let disk = w.sink.get_ref().clone();
        assert_eq!(disk.len() as u64, w.stream_offset());
        let mut r = TraceReader::new(io::Cursor::new(disk)).unwrap();
        assert_eq!(r.remaining(), None, "count still unknown: stream to EOF");
        let back: Vec<Request> = (&mut r).map(Result::unwrap).collect();
        assert_eq!(back, vec![Request::pos(NodeId(3)), Request::neg(NodeId(200))]);
    }

    #[test]
    fn torn_record_yields_the_good_prefix_and_resume_continues_it() {
        // Crash between a record append and the count patch, mid-record:
        // the log ends with a torn multi-byte varint and the sentinel
        // count. The reader must yield every complete record, report
        // `UnexpectedEof` for the tear, and point `byte_pos` at the end of
        // the good prefix; `resume` then continues the log from there.
        let header = TraceHeader::single_tree(1 << 20, 0, "torn");
        let mut w = TraceWriter::new(io::Cursor::new(Vec::new()), header.clone()).unwrap();
        let good = vec![Request::pos(NodeId(5)), Request::neg(NodeId(70_000))];
        for &r in &good {
            w.push(r).unwrap();
        }
        w.push(Request::pos(NodeId(90_000))).unwrap(); // 3-byte record
        w.sync().unwrap();
        let mut disk = w.sink.into_inner();
        disk.truncate(disk.len() - 2); // tear the last record
        let mut r = TraceReader::new(io::Cursor::new(&disk)).unwrap();
        assert_eq!(r.next().unwrap().unwrap(), good[0]);
        assert_eq!(r.next().unwrap().unwrap(), good[1]);
        let err = r.next().unwrap().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(r.next().is_none(), "a failed reader stays stopped");
        let end = r.byte_pos();
        assert_eq!(end, header.encoded_len() + 1 + 3, "torn bytes not counted");
        let records = r.records_read();
        assert_eq!(records, 2);
        // Truncate to the good prefix and resume appending.
        disk.truncate(end as usize);
        let mut sink = io::Cursor::new(disk);
        sink.seek(SeekFrom::End(0)).unwrap();
        let mut w = TraceWriter::resume(sink, header, 0, records).unwrap();
        assert_eq!(w.stream_offset(), end);
        assert_eq!(w.count(), 2);
        w.push(Request::pos(NodeId(8))).unwrap();
        let full = w.finish().unwrap().into_inner();
        let mut r = TraceReader::new(io::Cursor::new(full)).unwrap();
        assert_eq!(r.remaining(), Some(3), "finish patched the resumed count");
        let back: Vec<Request> = (&mut r).map(Result::unwrap).collect();
        assert_eq!(back, vec![good[0], good[1], Request::pos(NodeId(8))]);
    }

    #[test]
    fn resume_restamps_a_finished_count_to_unknown() {
        // A gracefully finished log has a patched count; a resumed writer
        // must immediately re-stamp the sentinel, or a crash after more
        // appends would leave a reader trusting the stale count and
        // silently dropping the new records.
        let header = TraceHeader::single_tree(64, 0, "restamp");
        let trace = Trace { header: header.clone(), requests: vec![Request::pos(NodeId(1))] };
        let bytes = trace.to_bytes();
        let mut sink = io::Cursor::new(bytes);
        sink.seek(SeekFrom::End(0)).unwrap();
        let mut w = TraceWriter::resume(sink, header, 0, 1).unwrap();
        w.push(Request::neg(NodeId(2))).unwrap();
        w.sync().unwrap();
        // Crash here (no finish): the reader must stream to EOF and see
        // both records.
        let disk = w.sink.into_inner();
        let mut r = TraceReader::new(io::Cursor::new(disk)).unwrap();
        assert_eq!(r.remaining(), None, "count re-stamped to the sentinel");
        let back: Vec<Request> = (&mut r).map(Result::unwrap).collect();
        assert_eq!(back, vec![Request::pos(NodeId(1)), Request::neg(NodeId(2))]);
    }

    #[test]
    fn resume_rejects_a_sink_shorter_than_the_header() {
        let header = TraceHeader::single_tree(64, 0, "short");
        let sink = io::Cursor::new(vec![0u8; 4]);
        let Err(err) = TraceWriter::resume(sink, header, 0, 0) else {
            panic!("resume over a headerless sink must fail")
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    fn sample_record(boundary: u64) -> RebalanceRecord {
        RebalanceRecord {
            boundary,
            epoch: boundary,
            loads: vec![
                crate::rebalance::CellLoad {
                    rounds: 10 * boundary,
                    paid_rounds: boundary,
                    occupancy: 2,
                },
                crate::rebalance::CellLoad { rounds: boundary, paid_rounds: 0, occupancy: 1 },
            ],
            moves: if boundary.is_multiple_of(2) { vec![(0, 1)] } else { Vec::new() },
        }
    }

    #[test]
    fn rebalance_records_interleave_and_round_trip() {
        let header = TraceHeader::single_tree(64, 7, "rebalance");
        let mut w = TraceWriter::with_flags(
            io::Cursor::new(Vec::new()),
            header.clone(),
            TRACE_FLAG_REBALANCE,
        )
        .unwrap();
        w.push(Request::pos(NodeId(1))).unwrap();
        w.push(Request::neg(NodeId(2))).unwrap();
        w.push_rebalance(&sample_record(1)).unwrap();
        w.push(Request::pos(NodeId(3))).unwrap();
        w.push_rebalance(&sample_record(2)).unwrap(); // trails the final request
        assert_eq!(w.count(), 3, "rebalance records never advance the request count");
        let bytes = w.finish().unwrap().into_inner();

        // Event view: the full interleaving, in order, including the
        // record trailing the declared count.
        let mut r = TraceReader::new(io::Cursor::new(&bytes)).unwrap();
        assert!(r.rebalance_capable());
        assert_eq!(r.remaining(), Some(3));
        let mut events = Vec::new();
        while let Some(e) = r.next_event().unwrap() {
            events.push(e);
        }
        assert_eq!(
            events,
            vec![
                TraceEvent::Request(Request::pos(NodeId(1))),
                TraceEvent::Request(Request::neg(NodeId(2))),
                TraceEvent::Rebalance(sample_record(1)),
                TraceEvent::Request(Request::pos(NodeId(3))),
                TraceEvent::Rebalance(sample_record(2)),
            ]
        );
        assert_eq!(r.records_read(), 3);
        assert_eq!(r.byte_pos(), bytes.len() as u64, "every body byte accounted for");

        // Iterator view: the requests-only projection, so Trace::load and
        // every pre-existing consumer see exactly the request stream.
        let back = Trace::from_bytes(&bytes).unwrap();
        assert_eq!(
            back.requests,
            vec![Request::pos(NodeId(1)), Request::neg(NodeId(2)), Request::pos(NodeId(3))]
        );
    }

    #[test]
    fn push_rebalance_requires_the_header_flag() {
        let header = TraceHeader::single_tree(8, 0, "unflagged");
        let mut w = TraceWriter::new(io::Cursor::new(Vec::new()), header).unwrap();
        let err = w.push_rebalance(&sample_record(1)).unwrap_err();
        assert!(err.to_string().contains("TRACE_FLAG_REBALANCE"), "got: {err}");
    }

    #[test]
    fn rebalance_tag_in_an_unflagged_stream_is_corruption() {
        let header = TraceHeader::single_tree(8, 0, "forged");
        let mut w = TraceWriter::new(io::Cursor::new(Vec::new()), header).unwrap();
        w.push(Request::pos(NodeId(1))).unwrap();
        w.sync().unwrap();
        let mut bytes = w.sink.into_inner();
        crate::wire::encode_varint(&mut bytes, REBALANCE_TAG);
        sample_record(1).write_framed(&mut bytes);
        let mut r = TraceReader::new(io::Cursor::new(&bytes)).unwrap();
        assert!(!r.rebalance_capable());
        assert_eq!(r.next().unwrap().unwrap(), Request::pos(NodeId(1)));
        let err = r.next().unwrap().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("TRACE_FLAG_REBALANCE"), "got: {err}");
    }

    #[test]
    fn unknown_flag_bits_still_rejected_both_ways() {
        let header = TraceHeader::single_tree(8, 0, "flags");
        let Err(err) = TraceWriter::with_flags(io::Cursor::new(Vec::new()), header.clone(), 0x4)
        else {
            panic!("unknown writer flags must be rejected")
        };
        assert!(err.to_string().contains("unknown trace flags"), "got: {err}");
        let mut bytes = Trace { header, requests: Vec::new() }.to_bytes();
        bytes[6..8].copy_from_slice(&0x8002u16.to_le_bytes());
        let err = Trace::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("reserved flags"), "got: {err}");
    }

    #[test]
    fn torn_rebalance_record_is_excluded_from_the_good_prefix() {
        let header = TraceHeader::single_tree(64, 0, "torn-rebalance");
        let mut w = TraceWriter::with_flags(
            io::Cursor::new(Vec::new()),
            header.clone(),
            TRACE_FLAG_REBALANCE,
        )
        .unwrap();
        w.push(Request::pos(NodeId(5))).unwrap();
        w.sync().unwrap();
        let good_end = w.stream_offset();
        w.push_rebalance(&sample_record(1)).unwrap();
        w.sync().unwrap();
        let mut disk = w.sink.into_inner();
        disk.truncate(disk.len() - 3); // tear inside the record payload
        let mut r = TraceReader::new(io::Cursor::new(&disk)).unwrap();
        assert_eq!(r.next_event().unwrap(), Some(TraceEvent::Request(Request::pos(NodeId(5)))));
        let err = r.next_event().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert_eq!(r.byte_pos(), good_end, "torn record bytes never enter the good prefix");
        // And a complete record DOES advance the good prefix, so resume
        // after a crash lands past it, not inside it.
        let mut w =
            TraceWriter::with_flags(io::Cursor::new(Vec::new()), header, TRACE_FLAG_REBALANCE)
                .unwrap();
        w.push(Request::pos(NodeId(5))).unwrap();
        w.push_rebalance(&sample_record(1)).unwrap();
        w.sync().unwrap();
        let end = w.stream_offset();
        let disk = w.sink.into_inner();
        assert_eq!(disk.len() as u64, end, "stream_offset covers rebalance bytes");
        let mut r = TraceReader::new(io::Cursor::new(&disk)).unwrap();
        while let Some(e) = r.next_event().unwrap() {
            drop(e);
        }
        assert_eq!(r.byte_pos(), end);
    }

    #[test]
    fn resume_with_flags_keeps_accepting_rebalance_records() {
        let header = TraceHeader::single_tree(64, 0, "resume-rebalance");
        let mut w = TraceWriter::with_flags(
            io::Cursor::new(Vec::new()),
            header.clone(),
            TRACE_FLAG_REBALANCE,
        )
        .unwrap();
        w.push(Request::pos(NodeId(1))).unwrap();
        w.push_rebalance(&sample_record(1)).unwrap();
        w.sync().unwrap();
        let mut sink = w.sink;
        sink.seek(SeekFrom::End(0)).unwrap();
        let mut w =
            TraceWriter::resume_with_flags(sink, header, 0, 1, TRACE_FLAG_REBALANCE).unwrap();
        w.push(Request::neg(NodeId(2))).unwrap();
        w.push_rebalance(&sample_record(2)).unwrap();
        let bytes = w.finish().unwrap().into_inner();
        let mut r = TraceReader::new(io::Cursor::new(&bytes)).unwrap();
        let mut events = Vec::new();
        while let Some(e) = r.next_event().unwrap() {
            events.push(e);
        }
        assert_eq!(
            events,
            vec![
                TraceEvent::Request(Request::pos(NodeId(1))),
                TraceEvent::Rebalance(sample_record(1)),
                TraceEvent::Request(Request::neg(NodeId(2))),
                TraceEvent::Rebalance(sample_record(2)),
            ]
        );
    }

    #[test]
    fn csv_round_trip() {
        let reqs = sample();
        let csv = to_csv(&reqs);
        assert!(csv.starts_with("round,sign,node\n"));
        assert_eq!(from_csv(&csv).unwrap(), reqs);
        assert!(from_csv("nope\n1,+,2\n").is_err());
        assert!(from_csv("").unwrap().is_empty());
    }

    #[test]
    fn jsonl_round_trip() {
        let reqs = sample();
        let jsonl = to_jsonl(&reqs);
        assert_eq!(from_jsonl(&jsonl).unwrap(), reqs);
        // Field order is free.
        assert_eq!(
            from_jsonl("{\"sign\":\"-\",\"node\":5}\n").unwrap(),
            vec![Request::neg(NodeId(5))]
        );
        assert!(from_jsonl("{\"node\":1}\n").is_err());
        assert!(from_jsonl("[1,2]\n").is_err());
    }
}
