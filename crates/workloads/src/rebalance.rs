//! Trace-level rebalance records.
//!
//! A rebalance-capable OTCT stream (header flag
//! [`crate::trace::TRACE_FLAG_REBALANCE`]) interleaves **rebalance
//! records** with its request records: one per decision boundary,
//! carrying the per-cell cumulative loads the decision saw, the moves it
//! chose, and the routing epoch it published. The record codec lives
//! here; the framing (how a record is escaped into the varint request
//! stream) lives in [`crate::trace`].
//!
//! Records are **verification anchors, not the source of truth**: a
//! rebalance decision is a pure function of the request stream prefix,
//! so replay recomputes every decision from the requests alone and
//! checks it bit-for-bit against the record when one is present. A
//! record torn off by a crash is truncated away with the log tail and
//! simply never verified — the recomputed schedule is unaffected.
//!
//! On the wire a record is a varint sequence (see
//! [`RebalanceRecord::encode_payload`]); the payload is length-prefixed
//! in the stream so readers can frame it without decoding it.

// Codec modules hold the panic-freedom line hardest: a narrowing cast
// or an out-of-bounds index here turns a corrupt record into a wrong
// answer or a crash. CI runs clippy with -D warnings, so these are
// hard gates for this file.
#![warn(clippy::cast_possible_truncation)]
#![warn(clippy::indexing_slicing)]

use std::io::{self, Read};

use crate::wire::{decode_varint, encode_varint};

/// Hard cap on the per-cell load vector length accepted by the decoder
/// (same bound as the trace header's shard map).
const MAX_CELLS: u64 = 1 << 20;

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Cumulative load counters of one cell at a decision boundary.
///
/// All three are **cumulative since the start of the stream** (not
/// per-window deltas): cumulative counters survive crash recovery for
/// free — they are restored with the engine snapshot — and a decision
/// window's delta is just the difference of two boundaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellLoad {
    /// Requests the cell has executed (its rounds).
    pub rounds: u64,
    /// Rounds that paid the service cost.
    pub paid_rounds: u64,
    /// Cache population at the boundary.
    pub occupancy: u64,
}

/// One rebalance decision, as recorded in (and replayed from) a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RebalanceRecord {
    /// Decision index `k`: the boundary sits after exactly
    /// `k · interval` accepted requests.
    pub boundary: u64,
    /// Routing-table epoch after applying [`RebalanceRecord::moves`]
    /// (tables bump once per boundary, so this equals `k`).
    pub epoch: u64,
    /// Per-cell cumulative loads at the boundary prefix, indexed by cell.
    pub loads: Vec<CellLoad>,
    /// The migrations decided at this boundary: `(cell, destination
    /// group)` pairs, in deterministic planner order.
    pub moves: Vec<(u32, u32)>,
}

impl RebalanceRecord {
    /// Appends the record's payload (framing excluded) to `buf` as a
    /// varint sequence: `boundary, epoch, #cells, (rounds, paid,
    /// occupancy)×cells, #moves, (cell, group)×moves`.
    pub fn encode_payload(&self, buf: &mut Vec<u8>) {
        encode_varint(buf, self.boundary);
        encode_varint(buf, self.epoch);
        encode_varint(buf, self.loads.len() as u64);
        for l in &self.loads {
            encode_varint(buf, l.rounds);
            encode_varint(buf, l.paid_rounds);
            encode_varint(buf, l.occupancy);
        }
        encode_varint(buf, self.moves.len() as u64);
        for &(cell, group) in &self.moves {
            encode_varint(buf, u64::from(cell));
            encode_varint(buf, u64::from(group));
        }
    }

    /// Decodes a payload produced by [`RebalanceRecord::encode_payload`].
    /// Strict: counts are bounded before any allocation, cell/group ids
    /// must fit `u32`, and every payload byte must be consumed — trailing
    /// bytes are corruption, never silently ignored.
    ///
    /// # Errors
    /// `InvalidData` on any structural violation; `UnexpectedEof` when
    /// the payload ends inside a field.
    pub fn decode_payload(bytes: &[u8]) -> io::Result<Self> {
        let mut src = io::Cursor::new(bytes);
        fn need(what: &'static str) -> impl Fn(Option<u64>) -> io::Result<u64> {
            move |v| {
                v.ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!("rebalance record ends before {what}"),
                    )
                })
            }
        }
        let boundary = decode_varint(&mut src).and_then(need("boundary"))?;
        let epoch = decode_varint(&mut src).and_then(need("epoch"))?;
        let cells = decode_varint(&mut src).and_then(need("cell count"))?;
        // Every cell costs at least 3 payload bytes; bound the count by
        // the bytes that remain before any allocation.
        let remaining = bytes.len() as u64 - src.position();
        if cells > MAX_CELLS || cells > remaining {
            return Err(bad_data(format!("implausible rebalance cell count {cells}")));
        }
        let mut loads = Vec::with_capacity(usize::try_from(cells).unwrap_or(0));
        for _ in 0..cells {
            loads.push(CellLoad {
                rounds: decode_varint(&mut src).and_then(need("cell rounds"))?,
                paid_rounds: decode_varint(&mut src).and_then(need("cell paid rounds"))?,
                occupancy: decode_varint(&mut src).and_then(need("cell occupancy"))?,
            });
        }
        let num_moves = decode_varint(&mut src).and_then(need("move count"))?;
        let remaining = bytes.len() as u64 - src.position();
        if num_moves > cells || num_moves > remaining {
            return Err(bad_data(format!("implausible rebalance move count {num_moves}")));
        }
        let mut moves = Vec::with_capacity(usize::try_from(num_moves).unwrap_or(0));
        for _ in 0..num_moves {
            let cell = decode_varint(&mut src).and_then(need("move cell"))?;
            let group = decode_varint(&mut src).and_then(need("move group"))?;
            let cell = u32::try_from(cell)
                .map_err(|_| bad_data(format!("rebalance move cell {cell} overflows u32")))?;
            if u64::from(cell) >= cells {
                return Err(bad_data(format!(
                    "rebalance move names cell {cell} but the record covers {cells}"
                )));
            }
            let group = u32::try_from(group)
                .map_err(|_| bad_data(format!("rebalance move group {group} overflows u32")))?;
            moves.push((cell, group));
        }
        if src.position() != bytes.len() as u64 {
            return Err(bad_data(format!(
                "rebalance record has {} trailing bytes",
                bytes.len() as u64 - src.position()
            )));
        }
        Ok(Self { boundary, epoch, loads, moves })
    }

    /// Reads one length-prefixed payload from `src` (the part after the
    /// stream's escape tag): a varint byte length, then exactly that many
    /// payload bytes, decoded strictly.
    ///
    /// # Errors
    /// `UnexpectedEof` when the stream ends inside the record (a torn
    /// record); `InvalidData` on structural corruption.
    pub fn read_framed<R: Read>(src: &mut R) -> io::Result<Self> {
        let len = decode_varint(src)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "stream ends before a rebalance record's length",
            )
        })?;
        // A record over ~16 MiB cannot come from a real run (a million
        // cells costs < 4 MiB); treat it as corruption before allocating.
        if len > (1 << 24) {
            return Err(bad_data(format!("implausible rebalance record length {len}")));
        }
        let mut payload = vec![0u8; usize::try_from(len).unwrap_or(0)];
        src.read_exact(&mut payload)?;
        Self::decode_payload(&payload)
    }

    /// Appends the framed form ([`RebalanceRecord::read_framed`]'s input:
    /// varint length + payload) to `buf`.
    pub fn write_framed(&self, buf: &mut Vec<u8>) {
        let mut payload = Vec::with_capacity(16 + self.loads.len() * 6 + self.moves.len() * 4);
        self.encode_payload(&mut payload);
        encode_varint(buf, payload.len() as u64);
        buf.extend_from_slice(&payload);
    }
}

#[cfg(test)]
#[allow(
    clippy::indexing_slicing,
    reason = "tests index fixture buffers they just built; a panic here is a failing test, not a service crash"
)]
mod tests {
    use super::*;

    fn sample() -> RebalanceRecord {
        RebalanceRecord {
            boundary: 3,
            epoch: 3,
            loads: vec![
                CellLoad { rounds: 900, paid_rounds: 410, occupancy: 7 },
                CellLoad { rounds: 80, paid_rounds: 12, occupancy: 2 },
                CellLoad { rounds: 20, paid_rounds: 20, occupancy: 0 },
            ],
            moves: vec![(0, 1), (2, 0)],
        }
    }

    #[test]
    fn payload_round_trips() {
        let rec = sample();
        let mut buf = Vec::new();
        rec.encode_payload(&mut buf);
        assert_eq!(RebalanceRecord::decode_payload(&buf).unwrap(), rec);
        // Empty decision (no cells, no moves) round-trips too.
        let empty = RebalanceRecord::default();
        let mut buf = Vec::new();
        empty.encode_payload(&mut buf);
        assert_eq!(RebalanceRecord::decode_payload(&buf).unwrap(), empty);
    }

    #[test]
    fn framed_round_trips() {
        let rec = sample();
        let mut buf = Vec::new();
        rec.write_framed(&mut buf);
        let mut src = io::Cursor::new(&buf);
        assert_eq!(RebalanceRecord::read_framed(&mut src).unwrap(), rec);
        assert_eq!(src.position(), buf.len() as u64, "framing consumed exactly");
    }

    #[test]
    fn corruption_is_rejected_with_typed_errors() {
        let rec = sample();
        let mut buf = Vec::new();
        rec.encode_payload(&mut buf);
        // Truncation inside the payload.
        let err = RebalanceRecord::decode_payload(&buf[..buf.len() - 1]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Trailing garbage.
        let mut long = buf.clone();
        long.push(0);
        let err = RebalanceRecord::decode_payload(&long).unwrap_err();
        assert!(err.to_string().contains("trailing"), "got: {err}");
        // An implausible cell count is rejected before any allocation.
        let mut forged = Vec::new();
        encode_varint(&mut forged, 0);
        encode_varint(&mut forged, 0);
        encode_varint(&mut forged, u64::MAX);
        let err = RebalanceRecord::decode_payload(&forged).unwrap_err();
        assert!(err.to_string().contains("cell count"), "got: {err}");
        // A move naming a cell outside the record is rejected.
        let bad = RebalanceRecord { moves: vec![(9, 0)], ..sample() };
        let mut buf = Vec::new();
        bad.encode_payload(&mut buf);
        let err = RebalanceRecord::decode_payload(&buf).unwrap_err();
        assert!(err.to_string().contains("names cell"), "got: {err}");
    }

    #[test]
    fn torn_framed_record_is_unexpected_eof() {
        let rec = sample();
        let mut buf = Vec::new();
        rec.write_framed(&mut buf);
        for cut in [0usize, 1, buf.len() / 2, buf.len() - 1] {
            let mut src = io::Cursor::new(&buf[..cut]);
            let err = RebalanceRecord::read_framed(&mut src).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }
}
