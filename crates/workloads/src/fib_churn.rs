//! FIB-update traces synthesized from real rule-dependency structure.
//!
//! The other generators draw trees at random; this one starts from an
//! `otc_trie::RuleTree` — a longest-matching-prefix routing table whose
//! dependency tree *is* the caching universe (paper, Section 2) — and
//! synthesizes the two event species a FIB cache actually sees:
//!
//! * **lookups**: Zipf-popular positive requests to rules (the Sarrar et
//!   al. traffic model the paper cites);
//! * **route flaps**: an update at a prefix rarely comes alone — BGP
//!   withdrawals re-announce along the *covering chain*, so a flap at rule
//!   `r` emits one α-chunk of negatives for `r` and for up to
//!   `max_hops − 1` of its ancestors in the containment tree (never the
//!   default route, which is not a real rule).
//!
//! The output is a persistent [`Trace`] with full seed provenance, so a
//! recorded table's workload replays bit-identically anywhere — this is
//! the repository's stand-in for proprietary BGP update feeds.

use otc_core::request::Request;
use otc_core::tree::NodeId;
use otc_trie::RuleTree;
use otc_util::{SplitMix64, Zipf};

use crate::trace::{Trace, TraceHeader};

/// Configuration for [`fib_update_trace`].
#[derive(Debug, Clone, Copy)]
pub struct FibChurnConfig {
    /// Total number of requests to emit (each flap hop counts α).
    pub len: usize,
    /// Chunk size for updates (the problem's α).
    pub alpha: u64,
    /// Zipf exponent of rule popularity for lookups.
    pub theta: f64,
    /// Probability that an event is a route flap rather than a lookup.
    pub flap_p: f64,
    /// Maximum rules touched per flap: the flapping rule plus up to
    /// `max_hops − 1` ancestors along its covering chain.
    pub max_hops: usize,
}

impl Default for FibChurnConfig {
    fn default() -> Self {
        Self { len: 100_000, alpha: 4, theta: 1.0, flap_p: 0.02, max_hops: 3 }
    }
}

/// Synthesizes a FIB lookup/flap workload over `rules` and records it as a
/// persistent [`Trace`] (generator `"fib-churn"`, the given seed, universe
/// = the rule-dependency tree).
///
/// Lookups hit rules by Zipf popularity over a seeded random ranking;
/// flaps pick a non-default rule by the same law and emit α-chunk
/// negatives up its covering chain (`max_hops` rules at most, default
/// route excluded). Everything derives from `seed` alone, so the same
/// `(rules, cfg, seed)` triple reproduces the identical trace on any
/// machine.
///
/// # Panics
/// Panics if the table has no non-default rule or `max_hops == 0`.
#[must_use]
pub fn fib_update_trace(rules: &RuleTree, cfg: FibChurnConfig, seed: u64) -> Trace {
    assert!(cfg.max_hops >= 1, "a flap touches at least the flapping rule");
    let tree = rules.tree();
    assert!(tree.len() >= 2, "need at least one non-default rule to flap");
    let mut rng = SplitMix64::new(seed);
    let mut ranking: Vec<NodeId> = tree.nodes().collect();
    rng.shuffle(&mut ranking);
    let zipf = Zipf::new(ranking.len(), cfg.theta);
    let root = tree.root();

    let mut requests = Vec::with_capacity(cfg.len);
    'outer: while requests.len() < cfg.len {
        let node = ranking[zipf.sample(&mut rng)];
        if rng.chance(cfg.flap_p) {
            // A flap: the chosen rule (or, if the draw hit the default
            // route, one of its children) plus ancestors up the chain.
            let origin =
                if node == root { NodeId(1 + rng.index(tree.len() - 1) as u32) } else { node };
            let mut hops = 0usize;
            let mut at = Some(origin);
            while let Some(v) = at {
                if v == root || hops == cfg.max_hops {
                    break;
                }
                for _ in 0..cfg.alpha {
                    requests.push(Request::neg(v));
                    if requests.len() == cfg.len {
                        break 'outer;
                    }
                }
                hops += 1;
                at = tree.parent(v);
            }
        } else {
            requests.push(Request::pos(node));
        }
    }

    Trace {
        header: TraceHeader {
            universe: tree.len() as u32,
            shard_map: vec![tree.len() as u32],
            seed,
            generator: "fib-churn".to_string(),
        },
        requests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otc_trie::{hierarchical_table, HierarchicalConfig};

    fn table(n: usize, seed: u64) -> RuleTree {
        let mut rng = SplitMix64::new(seed);
        RuleTree::build(&hierarchical_table(
            HierarchicalConfig { n, subdivide_p: 0.7, max_len: 28 },
            &mut rng,
        ))
    }

    #[test]
    fn trace_is_deterministic_and_well_formed() {
        let rules = table(256, 1);
        let cfg = FibChurnConfig { len: 20_000, ..FibChurnConfig::default() };
        let a = fib_update_trace(&rules, cfg, 0xF1B);
        let b = fib_update_trace(&rules, cfg, 0xF1B);
        assert_eq!(a, b, "same seed must reproduce the identical trace");
        assert_eq!(a.requests.len(), 20_000);
        assert_eq!(a.header.universe as usize, rules.tree().len());
        assert_eq!(a.header.seed, 0xF1B);
        assert!(a.requests.iter().all(|r| r.node.index() < rules.tree().len()));
        // Binary round trip preserves it exactly.
        let back = Trace::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn flaps_walk_the_covering_chain_and_spare_the_default_route() {
        let rules = table(512, 2);
        let tree = rules.tree();
        let cfg =
            FibChurnConfig { len: 60_000, alpha: 3, flap_p: 0.15, ..FibChurnConfig::default() };
        let trace = fib_update_trace(&rules, cfg, 7);
        let negs: Vec<&Request> = trace.requests.iter().filter(|r| !r.is_positive()).collect();
        assert!(!negs.is_empty(), "flap_p = 0.15 must produce updates");
        assert!(negs.iter().all(|r| r.node != tree.root()), "the default route never flaps");
        // Consecutive α-runs within one flap go child → parent: collect
        // run heads and check adjacent runs in a chain are related.
        let mut related = 0u32;
        let mut adjacent = 0u32;
        let reqs = &trace.requests;
        let mut i = 0;
        while i < reqs.len() {
            if !reqs[i].is_positive() {
                let a = reqs[i].node;
                let mut j = i;
                while j < reqs.len() && !reqs[j].is_positive() && reqs[j].node == a {
                    j += 1;
                }
                if j < reqs.len() && !reqs[j].is_positive() && j - i == 3 {
                    adjacent += 1;
                    if tree.parent(a) == Some(reqs[j].node) {
                        related += 1;
                    }
                }
                i = j;
            } else {
                i += 1;
            }
        }
        assert!(adjacent > 20, "expected multi-hop flaps, saw {adjacent} adjacent run pairs");
        let frac = f64::from(related) / f64::from(adjacent);
        assert!(frac > 0.5, "flap hops should climb the covering chain, got {frac}");
    }
}
