//! Randomised adversarial-input search.
//!
//! The paper's conclusion conjectures that TC's true competitive ratio does
//! not depend on the tree height. Probing that conjecture empirically needs
//! *bad* inputs, not random ones — this module provides a simple randomised
//! local search (mutate-and-keep-if-worse) over request sequences that
//! maximises the measured `TC/OPT` ratio against a caller-supplied exact
//! OPT evaluator. It is a heuristic: it certifies lower bounds on the
//! worst-case ratio, never upper bounds.

use otc_core::request::{Request, Sign};
use otc_core::tree::{NodeId, Tree};
use otc_util::SplitMix64;

/// Outcome of the adversarial search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The worst sequence found.
    pub requests: Vec<Request>,
    /// Its measured ratio (`cost_fn` numerator / denominator).
    pub ratio: f64,
    /// Accepted mutations.
    pub improvements: u32,
}

/// Maximises `ratio_fn(seq)` by randomised point/block mutations.
///
/// `ratio_fn` evaluates a candidate sequence (typically TC-cost divided by
/// exact-OPT-cost); the search keeps mutations that do not decrease it.
/// Runtime is `iters` evaluations of `ratio_fn`.
pub fn adversarial_search(
    tree: &Tree,
    len: usize,
    iters: u32,
    rng: &mut SplitMix64,
    mut ratio_fn: impl FnMut(&[Request]) -> f64,
) -> SearchOutcome {
    let n = tree.len();
    let random_req = |rng: &mut SplitMix64| {
        let node = NodeId(rng.index(n) as u32);
        let sign = if rng.chance(0.35) { Sign::Negative } else { Sign::Positive };
        Request { node, sign }
    };
    let mut current: Vec<Request> = (0..len).map(|_| random_req(rng)).collect();
    let mut best_ratio = ratio_fn(&current);
    let mut improvements = 0;

    for _ in 0..iters {
        let mut candidate = current.clone();
        match rng.index(3) {
            0 => {
                // Point mutation.
                let i = rng.index(len);
                candidate[i] = random_req(rng);
            }
            1 => {
                // Block rewrite: hammer one node over a random window.
                let i = rng.index(len);
                let w = 1 + rng.index(16.min(len - i));
                let req = random_req(rng);
                for slot in &mut candidate[i..i + w] {
                    *slot = req;
                }
            }
            _ => {
                // Block duplication: repeat an earlier window later on
                // (builds periodic adversarial patterns).
                let w = 1 + rng.index(16.min(len / 2));
                let src = rng.index(len - w + 1);
                let dst = rng.index(len - w + 1);
                let window: Vec<Request> = candidate[src..src + w].to_vec();
                candidate[dst..dst + w].copy_from_slice(&window);
            }
        }
        let r = ratio_fn(&candidate);
        if r >= best_ratio {
            if r > best_ratio {
                improvements += 1;
            }
            best_ratio = r;
            current = candidate;
        }
    }
    SearchOutcome { requests: current, ratio: best_ratio, improvements }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use otc_core::tc::{TcConfig, TcFast};
    use otc_core::tree::Tree;

    /// Objective used in the mechanics tests: raw TC cost.
    fn tc_cost_objective(tree: &Arc<Tree>, alpha: u64, k: usize) -> impl FnMut(&[Request]) -> f64 {
        let tree = Arc::clone(tree);
        move |reqs: &[Request]| {
            let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, k));
            let (service, touched) = otc_core::policy::run_raw(&mut tc, reqs);
            (service + alpha * touched) as f64
        }
    }

    #[test]
    fn search_never_regresses_below_start() {
        let tree = Arc::new(Tree::star(3));
        let mut rng = SplitMix64::new(5);
        // The very first evaluation is the starting ratio; the accept rule
        // is monotone, so the outcome cannot be below it.
        let mut first = None;
        let out = {
            let mut obj = tc_cost_objective(&tree, 2, 2);
            adversarial_search(&tree, 100, 150, &mut rng, |reqs| {
                let r = obj(reqs);
                if first.is_none() {
                    first = Some(r);
                }
                r
            })
        };
        assert_eq!(out.requests.len(), 100);
        assert!(out.ratio >= first.expect("evaluated at least once"));
    }

    #[test]
    fn found_sequence_realises_reported_ratio() {
        let tree = Arc::new(Tree::kary(2, 2));
        let mut rng = SplitMix64::new(7);
        let out = adversarial_search(&tree, 80, 120, &mut rng, tc_cost_objective(&tree, 2, 2));
        let mut objective = tc_cost_objective(&tree, 2, 2);
        let check = objective(&out.requests);
        assert_eq!(check, out.ratio, "reported ratio must be reproducible from the sequence");
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        let tree = Arc::new(Tree::path(4));
        let run = |seed: u64| {
            let mut rng = SplitMix64::new(seed);
            let tree2 = Arc::clone(&tree);
            adversarial_search(&tree, 60, 80, &mut rng, move |reqs| {
                let mut tc = TcFast::new(Arc::clone(&tree2), TcConfig::new(2, 2));
                let (service, touched) = otc_core::policy::run_raw(&mut tc, reqs);
                (service + 2 * touched) as f64
            })
        };
        let a = run(9);
        let b = run(9);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.ratio, b.ratio);
    }
}
