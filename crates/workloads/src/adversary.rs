//! The lower-bound adversary (paper, Appendix C).
//!
//! The reduction: take a star whose leaves play the role of pages. A paging
//! request to page `p` becomes `α` consecutive positive requests to leaf
//! `p`. The classic paging adversary always requests a page missing from
//! the online algorithm's cache; with `kONL + 1` leaves such a page always
//! exists, and the paging lower bound `kONL/(kONL − kOPT + 1)` transfers to
//! tree caching up to a constant factor (Theorem C.1).
//!
//! The adversary here is *adaptive*: it inspects the policy's cache after
//! every round, emits the next chunk accordingly, and records the produced
//! sequence so that an offline solution can be computed on it afterwards.

use otc_core::policy::{ActionBuffer, CachePolicy};
use otc_core::request::Request;
use otc_core::tree::{NodeId, Tree};

/// Result of driving a policy against the adversary.
#[derive(Debug, Clone)]
pub struct AdversaryRun {
    /// The adaptively generated request sequence (α requests per page
    /// round), replayable against any other algorithm.
    pub trace: Vec<Request>,
    /// Service cost the driven policy paid.
    pub online_service: u64,
    /// Nodes the driven policy fetched/evicted (monetary cost = α × this).
    pub online_touched: u64,
    /// The leaf chosen in each page round.
    pub page_choices: Vec<NodeId>,
}

impl AdversaryRun {
    /// Packages the adaptively generated sequence as a persistent
    /// [`crate::trace::Trace`] (generator `"paging-adversary"`), so the
    /// exact sequence that hurt one algorithm can be archived and replayed
    /// against any other across processes. The adversary is adaptive — its
    /// sequence derives from the driven policy, not from a seed — so the
    /// header's seed field records `0`.
    #[must_use]
    pub fn to_trace(&self, tree: &Tree) -> crate::trace::Trace {
        crate::trace::Trace {
            header: crate::trace::TraceHeader {
                universe: tree.len() as u32,
                shard_map: vec![tree.len() as u32],
                seed: 0,
                generator: "paging-adversary".to_string(),
            },
            requests: self.trace.clone(),
        }
    }
}

/// Drives `policy` for `page_rounds` adversarial page rounds on a star
/// tree. Each round targets the lowest-indexed leaf absent from the
/// policy's cache with `alpha` consecutive positive requests.
///
/// # Panics
/// Panics if the tree is not a star (height > 2) or if at some round every
/// leaf is cached (give the adversary at least `capacity + 1` leaves; the
/// root also occupies a slot if cached, which only helps the adversary).
pub fn drive_paging_adversary(
    policy: &mut dyn CachePolicy,
    tree: &Tree,
    alpha: u64,
    page_rounds: usize,
) -> AdversaryRun {
    assert!(tree.height() <= 2, "the Appendix C reduction uses a star");
    let leaves = tree.leaves();
    let mut run = AdversaryRun {
        trace: Vec::with_capacity(page_rounds * alpha as usize),
        online_service: 0,
        online_touched: 0,
        page_choices: Vec::with_capacity(page_rounds),
    };
    let mut buf = ActionBuffer::new();
    for _ in 0..page_rounds {
        let target = leaves
            .iter()
            .copied()
            .find(|&l| !policy.cache().contains(l))
            .expect("adversary needs a non-cached leaf; use > capacity leaves");
        run.page_choices.push(target);
        for _ in 0..alpha {
            let req = Request::pos(target);
            run.trace.push(req);
            policy.step(req, &mut buf);
            run.online_service += u64::from(buf.paid_service());
            run.online_touched += buf.nodes_touched() as u64;
        }
    }
    run
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use otc_core::tc::{TcConfig, TcFast};

    #[test]
    fn adversary_always_finds_a_miss() {
        let k = 4;
        let tree = Arc::new(Tree::star(k + 1));
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(2, k));
        let run = drive_paging_adversary(&mut tc, &tree, 2, 50);
        assert_eq!(run.trace.len(), 100);
        assert_eq!(run.page_choices.len(), 50);
        // Every chunk's first request must have been a paying miss.
        assert!(run.online_service >= 50, "each round starts with a miss");
    }

    #[test]
    fn online_cost_scales_with_rounds() {
        let k = 6;
        let tree = Arc::new(Tree::star(k + 1));
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(4, k));
        let rounds = 200;
        let run = drive_paging_adversary(&mut tc, &tree, 4, rounds);
        // TC pays at least ~α per round (either α misses or a fetch that
        // the adversary immediately invalidates next round).
        let total = run.online_service + 4 * run.online_touched;
        assert!(
            total >= (rounds as u64) * 4 / 2,
            "adversary must hurt the online algorithm, total {total}"
        );
    }

    #[test]
    fn trace_is_replayable() {
        let k = 3;
        let tree = Arc::new(Tree::star(k + 1));
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(2, k));
        let run = drive_paging_adversary(&mut tc, &tree, 2, 30);
        // Replaying the recorded trace against a fresh instance reproduces
        // the same cost (the adversary is deterministic given the policy).
        let mut tc2 = TcFast::new(Arc::clone(&tree), TcConfig::new(2, k));
        let (service, touched) = otc_core::policy::run_raw(&mut tc2, &run.trace);
        assert_eq!(service, run.online_service);
        assert_eq!(touched, run.online_touched);
    }

    #[test]
    fn adversary_trace_round_trips_through_the_binary_format() {
        let k = 3;
        let tree = Arc::new(Tree::star(k + 1));
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(2, k));
        let run = drive_paging_adversary(&mut tc, &tree, 2, 25);
        let trace = run.to_trace(&tree);
        assert_eq!(trace.header.generator, "paging-adversary");
        assert_eq!(trace.header.universe as usize, tree.len());
        let back = crate::trace::Trace::from_bytes(&trace.to_bytes()).unwrap();
        assert_eq!(back.requests, run.trace, "archived adversarial sequences replay exactly");
    }

    #[test]
    #[should_panic(expected = "star")]
    fn non_star_rejected() {
        let tree = Arc::new(Tree::path(3));
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(2, 2));
        drive_paging_adversary(&mut tc, &tree, 2, 1);
    }
}
