//! The shared request-record codec.
//!
//! One definition of how a [`Request`] becomes bytes (and characters),
//! used by every encode/decode path in the workspace:
//!
//! * the **binary record**: an LEB128 varint of
//!   `(node_id << 1) | is_negative`, so hot small node ids cost one byte.
//!   This is the OTCT trace body ([`crate::trace::TraceWriter`] /
//!   [`crate::trace::TraceReader`]) *and* the `otc-serve` wire protocol's
//!   request payload — factoring it here is what guarantees a live
//!   service's log replays through the exact bytes-level format the
//!   offline tooling reads;
//! * the **sign character** `'+'` / `'-'` shared by the line format, CSV
//!   and JSONL interop ([`crate::trace`]).
//!
//! Decoding is strict: continuation chains past 64 bits, payload bits
//! shifted out of the top of the `u64`, and node ids overflowing `u32`
//! are rejected as corruption — never silently misparsed into a
//! plausible value (`crates/workloads/tests/proptest_trace.rs` and the
//! serve wire proptests both pin this).

// Codec modules hold the panic-freedom line hardest: a narrowing cast
// or an out-of-bounds index here turns a corrupt record into a wrong
// answer or a crash. CI runs clippy with -D warnings, so these are
// hard gates for this file.
#![warn(clippy::cast_possible_truncation)]
#![warn(clippy::indexing_slicing)]

use std::io::{self, Read};

use otc_core::request::{Request, Sign};
use otc_core::tree::NodeId;

/// Builds an `InvalidData` error (the kind every corruption path uses).
fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Appends `value` to `buf` as an LEB128 varint (1–10 bytes).
pub fn encode_varint(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        // otc-lint: allow(R4 reason="masked to 7 bits, provably lossless")
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            break;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint from `src`.
///
/// Returns `Ok(None)` on a clean EOF *before the first byte* (the
/// stream-ended case); EOF mid-varint is an `UnexpectedEof` error.
/// `Interrupted` reads are retried transparently.
///
/// # Errors
/// `InvalidData` on a continuation chain past 64 bits or payload bits
/// that would be shifted out of the top of the `u64`; `UnexpectedEof` on
/// truncation inside a varint.
pub fn decode_varint<R: Read>(src: &mut R) -> io::Result<Option<u64>> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    let mut first = true;
    loop {
        let mut byte = [0u8; 1];
        let read = loop {
            match src.read(&mut byte) {
                Ok(n) => break n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        if read == 0 {
            if first {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "byte stream truncated inside a varint",
            ));
        }
        // Reject any continuation past 64 bits *and* any payload bits that
        // would be shifted out of the top of the u64 — a corrupt body must
        // never silently misparse into a plausible value.
        let bits = u64::from(byte[0] & 0x7F);
        let shifted = bits.checked_shl(shift).filter(|v| v >> shift == bits);
        let Some(shifted) = shifted else {
            return Err(bad_data("varint overflows u64"));
        };
        value |= shifted;
        shift += 7;
        first = false;
        if byte[0] & 0x80 == 0 {
            return Ok(Some(value));
        }
    }
}

/// The varint payload of one request record:
/// `(node_id << 1) | is_negative`.
#[must_use]
pub fn request_to_varint(req: Request) -> u64 {
    (u64::from(req.node.0) << 1) | u64::from(req.sign == Sign::Negative)
}

/// Decodes a request record payload (the inverse of
/// [`request_to_varint`]).
///
/// # Errors
/// `InvalidData` when the node id overflows `u32`.
pub fn request_from_varint(value: u64) -> io::Result<Request> {
    let node = u32::try_from(value >> 1)
        .map_err(|_| bad_data(format!("node id {} overflows u32", value >> 1)))?;
    let sign = if value & 1 == 1 { Sign::Negative } else { Sign::Positive };
    Ok(Request { node: NodeId(node), sign })
}

/// Appends one request record to `buf` (LEB128 of
/// [`request_to_varint`]).
pub fn encode_request(buf: &mut Vec<u8>, req: Request) {
    encode_varint(buf, request_to_varint(req));
}

/// Reads one request record from `src`; `Ok(None)` on clean EOF before
/// the record starts.
///
/// # Errors
/// Everything [`decode_varint`] and [`request_from_varint`] reject.
pub fn decode_request<R: Read>(src: &mut R) -> io::Result<Option<Request>> {
    match decode_varint(src)? {
        Some(value) => Ok(Some(request_from_varint(value)?)),
        None => Ok(None),
    }
}

/// The sign character of the text formats: `'+'` for positive requests,
/// `'-'` for negative ones.
#[must_use]
pub fn sign_char(sign: Sign) -> char {
    if sign == Sign::Positive {
        '+'
    } else {
        '-'
    }
}

/// Parses a sign rendered by [`sign_char`]; `None` for anything else.
#[must_use]
pub fn parse_sign(text: &str) -> Option<Sign> {
    match text {
        "+" => Some(Sign::Positive),
        "-" => Some(Sign::Negative),
        _ => None,
    }
}

#[cfg(test)]
#[allow(
    clippy::indexing_slicing,
    reason = "tests index fixture buffers they just built; a panic here is a failing test, not a service crash"
)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn varints_round_trip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX];
        for &v in &values {
            encode_varint(&mut buf, v);
        }
        let mut src = Cursor::new(buf);
        for &v in &values {
            assert_eq!(decode_varint(&mut src).unwrap(), Some(v));
        }
        assert_eq!(decode_varint(&mut src).unwrap(), None, "clean EOF");
    }

    #[test]
    fn requests_round_trip_and_pack_small_ids() {
        for req in [
            Request::pos(NodeId(0)),
            Request::neg(NodeId(0)),
            Request::pos(NodeId(63)),
            Request::neg(NodeId(u32::MAX)),
        ] {
            let mut buf = Vec::new();
            encode_request(&mut buf, req);
            let back = decode_request(&mut Cursor::new(&buf)).unwrap().unwrap();
            assert_eq!(back, req);
        }
        let mut buf = Vec::new();
        encode_request(&mut buf, Request::pos(NodeId(63)));
        assert_eq!(buf.len(), 1, "ids below 64 cost one byte");
    }

    #[test]
    fn truncation_and_overflow_are_rejected() {
        // EOF mid-varint.
        let err = decode_varint(&mut Cursor::new([0x80u8])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Payload bits beyond u64.
        let bytes = [0x81, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02];
        let err = decode_varint(&mut Cursor::new(bytes)).unwrap_err();
        assert!(err.to_string().contains("overflows"), "got: {err}");
        // Continuation chain past 10 groups.
        let mut long = vec![0x80u8; 10];
        long.push(0x01);
        let err = decode_varint(&mut Cursor::new(long)).unwrap_err();
        assert!(err.to_string().contains("overflows"), "got: {err}");
        // Node id overflowing u32 (varint itself fine).
        let err = request_from_varint(u64::from(u32::MAX) << 2).unwrap_err();
        assert!(err.to_string().contains("u32"), "got: {err}");
    }

    #[test]
    fn sign_helpers_are_inverse() {
        assert_eq!(sign_char(Sign::Positive), '+');
        assert_eq!(sign_char(Sign::Negative), '-');
        assert_eq!(parse_sign("+"), Some(Sign::Positive));
        assert_eq!(parse_sign("-"), Some(Sign::Negative));
        assert_eq!(parse_sign("±"), None);
        assert_eq!(parse_sign(""), None);
    }
}
