//! Quickstart: the online tree caching problem and the TC algorithm in
//! sixty lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use online_tree_caching::prelude::*;

fn main() {
    // The universe: a rooted tree. Caching a node requires caching its
    // whole subtree (think: an IP rule and all of its more-specific rules).
    //
    //        0          (default route)
    //       / \
    //      1   4        (two /8 blocks)
    //     / \   \
    //    2   3   5      (more-specific rules)
    let tree = Arc::new(Tree::from_parents(&[None, Some(0), Some(1), Some(1), Some(0), Some(4)]));

    // TC with per-node reorganisation cost α = 2 and capacity 3.
    let alpha = 2;
    let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, 3));

    println!("α = {alpha}, capacity = 3, tree of {} nodes\n", tree.len());

    // TC is a rent-or-buy scheme: it tolerates misses on a node until their
    // count pays for a fetch (α per node fetched), then fetches the
    // *maximal* saturated set.
    let leaf = NodeId(2);
    for round in 1..=3 {
        let out = tc.step_owned(Request::pos(leaf));
        println!(
            "round {round}: positive request to {leaf} — paid: {}, actions: {:?}",
            out.paid_service, out.actions
        );
    }
    assert!(tc.cache().contains(leaf));

    // Negative requests model rule updates: a cached node that keeps
    // changing is not worth keeping in the expensive router memory.
    for round in 4..=5 {
        let out = tc.step_owned(Request::neg(leaf));
        println!(
            "round {round}: negative request to {leaf} — paid: {}, actions: {:?}",
            out.paid_service, out.actions
        );
    }
    assert!(!tc.cache().contains(leaf), "TC evicted the churning node");

    // The cache is always a subforest: fetching node 4 forces node 5 too.
    for _ in 0..2 * alpha {
        tc.step_owned(Request::pos(NodeId(4)));
    }
    assert!(tc.cache().contains(NodeId(4)));
    assert!(tc.cache().contains(NodeId(5)), "subtree came along");
    println!(
        "\ncache after hammering node 4: {:?} (node 5 came along — subforest invariant)",
        tc.cache().iter().collect::<Vec<_>>()
    );
    println!("stats: {:?}", tc.stats());

    // For real runs, drive policies through the engine: it owns a forest
    // of one or more shards, routes batches of requests, verifies every
    // move against its own mirror, and accounts all costs itself. Here:
    // the same tree as a single shard, one verified batch.
    use online_tree_caching::sim::engine::{EngineConfig, ShardedEngine};
    let factory = |shard_tree: std::sync::Arc<Tree>, _shard: ShardId| {
        Box::new(TcFast::new(shard_tree, TcConfig::new(2, 3))) as Box<dyn CachePolicy>
    };
    let mut engine =
        ShardedEngine::new(Forest::single(Arc::clone(&tree)), &factory, EngineConfig::new(2));
    let batch: Vec<Request> = (0..3).map(|_| Request::pos(NodeId(2))).collect();
    engine.submit_batch(&batch).expect("TC never violates the protocol");
    let report = engine.into_report().expect("valid run");
    println!(
        "\nengine replay of the first three requests: service {}, reorg {}, {} fetch event(s)",
        report.cost.service, report.cost.reorg, report.fetch_events
    );
    assert_eq!(report.cost.service, 2, "two misses before the saturated fetch");
    assert_eq!(report.fetch_events, 1);
}
