//! Dynamic resharding under live skew, end to end: a rebalancing
//! loopback service rides out a diurnal multi-tenant workload whose hot
//! spot migrates around the forest, re-homing cells between serving
//! groups as the load moves — then the whole run, *including every
//! migration decision*, is proven bit-identical to a replay of the
//! trace it logged.
//!
//! ```text
//! cargo run --release --example rebalance_skew
//! ```
//!
//! 1. start an `otc-serve` [`Server`] over the cells forest of a 6-ary
//!    tree (6 cells spread over 4 serving groups, rebalancing on —
//!    deliberately *not* 3 groups: round-robin over 6 phase-shifted
//!    tenants would pair each cell with its exact anti-phase twin and
//!    the groups would stay balanced by symmetry);
//! 2. hammer it with two concurrent clients submitting a diurnal
//!    tenant stream — each tenant's load follows a phase-shifted
//!    day/night cycle, so the heavy cells keep changing;
//! 3. shut down: the outcome reports how many boundaries fired and how
//!    many cells migrated, and the telemetry exposes the per-window
//!    `imbalance_x1000` metric the planner reacted to;
//! 4. replay the logged trace through a fresh cells engine and a fresh
//!    rebalancer built from the shard count alone, and assert reports,
//!    aggregate, telemetry, final placement and the verified record
//!    count all match the live run — determinism invariant #7.
//!
//! CI runs this binary as the rebalancing smoke test.

use std::sync::Arc;

use online_tree_caching::prelude::*;
use online_tree_caching::serve::{initial_table, Client, RebalancePolicy, ServeConfig, Server};
use online_tree_caching::sim::engine::{EngineConfig, ShardedEngine};
use online_tree_caching::sim::{replay_trace_rebalancing, RebalanceConfig, Rebalancer};
use online_tree_caching::util::SplitMix64;
use online_tree_caching::workloads::trace::TraceReader;
use online_tree_caching::workloads::{diurnal_tenant_stream, DiurnalConfig, TenantProfile};

const ALPHA: u64 = 4;
const GROUPS: u32 = 4;
const CLIENTS: usize = 2;
const LEN: usize = 48_000;
const INTERVAL: u64 = 4_000;
const SEED: u64 = 0x0DD_BA11;

fn factory(tree: Arc<Tree>, _s: ShardId) -> Box<dyn CachePolicy> {
    Box::new(TcFast::new(tree, TcConfig::new(ALPHA, 48))) as Box<dyn CachePolicy>
}

fn main() {
    // --- 1. Six cells (root-child subtries) over four serving groups.
    let mut rng = SplitMix64::new(SEED);
    let tree = Tree::kary(6, 4); // 259 nodes, 6 cells of 43 each
    let forest = Forest::cells(&tree);
    let cells = forest.num_shards();
    let rcfg = RebalanceConfig::new(INTERVAL).threshold_x1000(1150);
    let policy = RebalancePolicy::new(GROUPS, rcfg, Arc::new(factory));
    let engine_cfg = EngineConfig::bare(ALPHA).audit_every(4096).telemetry(true);
    let engine = ShardedEngine::new(forest.clone(), &factory, engine_cfg);
    let serve_cfg = ServeConfig { rebalance: Some(policy), ..ServeConfig::default() };
    let server = Server::start(engine, serve_cfg).expect("bind 127.0.0.1");
    println!(
        "serving {cells} cells over {} groups at {} (boundary every {INTERVAL} requests)",
        server.num_groups(),
        server.addr()
    );

    // --- 2. A diurnal stream: tenant load orbits the forest.
    let profiles = vec![TenantProfile::skewed(1.1); cells];
    let diurnal = DiurnalConfig { len: LEN, alpha: ALPHA, period: 12_000, amplitude: 0.9 };
    let stream = diurnal_tenant_stream(&forest, &profiles, diurnal, &mut rng);
    let addr = server.addr();
    let per = stream.len() / CLIENTS;
    std::thread::scope(|scope| {
        for (c, slice) in stream.chunks(per + 1).enumerate() {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for chunk in slice.chunks(256 + c) {
                    client.submit(chunk).expect("submit");
                }
                client.drain().expect("drain");
                client.bye().expect("bye");
            });
        }
    });

    // --- 3. Shutdown: what did the rebalancer do, and what did it see?
    let outcome = server.shutdown().expect("clean shutdown");
    let summary = outcome.rebalance.clone().expect("a rebalancing service reports a summary");
    assert!(summary.migrations > 0, "diurnal skew must migrate cells");
    println!(
        "live run: {} requests, {} boundaries, {} migrations, final owners {:?}",
        outcome.requests_served, summary.boundaries, summary.migrations, summary.owners
    );
    let peak = outcome
        .timeline
        .windows
        .iter()
        .filter_map(|w| outcome.timeline.imbalance_x1000(w.window))
        .max()
        .unwrap_or(0);
    println!(
        "telemetry: peak per-window imbalance {}.{:03}x the mean cell load",
        peak / 1000,
        peak % 1000
    );

    // --- 4. Replay the log: the schedule is a pure function of it.
    let bytes = outcome.trace_bytes.as_deref().expect("memory log");
    let mut replay = ShardedEngine::new(forest, &factory, engine_cfg);
    let mut reader = TraceReader::new(std::io::Cursor::new(bytes)).expect("valid header");
    let mut reb = Rebalancer::new(rcfg, initial_table(cells, GROUPS).expect("valid shape"));
    let mut chunk = Vec::with_capacity(8 * 1024);
    let verdict = replay_trace_rebalancing(&mut replay, &mut reader, &mut reb, &mut chunk)
        .expect("replay verifies the live schedule");
    assert_eq!(verdict.replayed, outcome.requests_served);
    assert_eq!(verdict.verified, summary.boundaries, "every live record verified");
    assert_eq!(reb.table().owners(), summary.owners.as_slice(), "identical final placement");
    assert_eq!(reb.table().epoch(), summary.epoch);
    assert_eq!(replay.timeline(), outcome.timeline, "telemetry is bit-identical");
    let per_shard = replay.into_reports().expect("verified replay");
    assert_eq!(per_shard, outcome.per_shard, "per-cell reports are bit-identical");
    println!(
        "replay: {} requests, {} records verified — live run and replay are bit-identical \
         (invariant #7)",
        verdict.replayed, verdict.verified
    );
}
