//! Live serving end to end: a loopback TCP service over a sharded
//! forest, hammered by concurrent clients, then proven bit-identical to
//! an offline replay of the trace it logged.
//!
//! ```text
//! cargo run --release --example serve_loopback
//! ```
//!
//! 1. start an `otc-serve` [`Server`] over a 4-shard forest (one
//!    persistent worker thread per shard, OTCT trace logging on);
//! 2. connect 4 concurrent clients, each submitting its slice of a
//!    multi-tenant workload — half synchronous, half pipelined;
//! 3. drain, say goodbye, shut down: collect per-shard verified
//!    reports, the aggregate, the telemetry timeline, and the logged
//!    OTCT trace;
//! 4. replay the log through a fresh `ShardedEngine` and assert the
//!    live run and the replay are **bit-identical** — the repo's core
//!    determinism invariant, now holding across threads and sockets.
//!
//! CI runs this binary as the serving smoke test.

use std::sync::Arc;

use online_tree_caching::prelude::*;
use online_tree_caching::serve::{Client, ServeConfig, Server};
use online_tree_caching::sim::engine::{EngineConfig, ShardedEngine};
use online_tree_caching::util::SplitMix64;
use online_tree_caching::workloads::trace::TraceReader;
use online_tree_caching::workloads::{multi_tenant_stream, TenantProfile};

const ALPHA: u64 = 4;
const SHARDS: usize = 4;
const CLIENTS: usize = 4;
const PER_CLIENT: usize = 20_000;
const SEED: u64 = 0x5EED_5EAE;

fn factory(tree: Arc<Tree>, _s: ShardId) -> Box<dyn CachePolicy> {
    Box::new(TcFast::new(tree, TcConfig::new(ALPHA, 64))) as Box<dyn CachePolicy>
}

fn main() {
    // --- 1. A 4-shard forest served by 4 pinned workers.
    let mut rng = SplitMix64::new(SEED);
    let forest = Forest::partition(&Tree::kary(4, 5), SHARDS); // 341 nodes
    let engine_cfg = EngineConfig::bare(ALPHA).audit_every(4096).telemetry(true);
    let engine = ShardedEngine::new(forest.clone(), &factory, engine_cfg);
    let server = Server::start(engine, ServeConfig::default()).expect("bind 127.0.0.1");
    println!(
        "serving {} global nodes over {} shards at {}",
        forest.global_len(),
        server.num_shards(),
        server.addr()
    );

    // --- 2. Four concurrent clients, each with its own workload slice.
    let profiles = vec![TenantProfile::skewed(1.1); SHARDS];
    let addr = server.addr();
    let slices: Vec<Vec<Request>> = (0..CLIENTS)
        .map(|_| multi_tenant_stream(&forest, &profiles, PER_CLIENT, ALPHA, &mut rng))
        .collect();
    #[allow(
        clippy::needless_collect,
        reason = "collecting spawns every client thread before the first join; a lazy \
                  iterator would run the clients one at a time"
    )]
    let handles: Vec<_> = slices
        .into_iter()
        .enumerate()
        .map(|(c, reqs)| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut accepted = 0u64;
                if c % 2 == 0 {
                    for chunk in reqs.chunks(256) {
                        accepted += client.submit(chunk).expect("submit");
                    }
                } else {
                    for chunk in reqs.chunks(256) {
                        client.send(chunk).expect("send");
                        if client.inflight() >= 16 {
                            accepted += client.wait_acks().expect("acks");
                        }
                    }
                    accepted += client.wait_acks().expect("acks");
                }
                client.drain().expect("drain");
                client.bye().expect("bye");
                accepted
            })
        })
        .collect();
    let total: u64 = handles.into_iter().map(|h| h.join().expect("client")).sum();
    println!("{CLIENTS} clients submitted {total} requests");

    // --- 3. Graceful shutdown: reports + timeline + the OTCT log.
    let outcome = server.shutdown().expect("clean shutdown");
    assert_eq!(outcome.requests_served, total);
    println!(
        "live service: {} rounds, total cost {} (service {}, reorg {})",
        outcome.report.rounds,
        outcome.report.cost.total(),
        outcome.report.cost.service,
        outcome.report.cost.reorg
    );
    for (s, r) in outcome.per_shard.iter().enumerate() {
        println!(
            "  shard {s}: {} rounds, cost {}, peak cache {}",
            r.rounds,
            r.cost.total(),
            r.peak_cache
        );
    }
    let trace = outcome.trace_bytes.expect("memory trace log");
    println!(
        "logged OTCT trace: {} bytes ({:.2} B/request), {} telemetry windows",
        trace.len(),
        trace.len() as f64 / total as f64,
        outcome.timeline.windows.len()
    );

    // --- 4. The invariant: live ≡ offline replay of the log.
    let mut replayer = ShardedEngine::new(forest, &factory, engine_cfg);
    let mut reader = TraceReader::new(std::io::Cursor::new(&trace)).expect("valid header");
    assert_eq!(reader.header().generator, "otc-serve");
    let mut chunk = Vec::with_capacity(16 * 1024);
    replayer.replay_trace(&mut reader, &mut chunk).expect("replay");
    let replayed = replayer.into_reports().expect("valid");
    assert_eq!(replayed, outcome.per_shard, "live serving must equal offline replay, per shard");
    assert_eq!(
        online_tree_caching::sim::aggregate_reports(replayed),
        outcome.report,
        "and in aggregate"
    );
    println!("ok: live service == offline replay of its own log, bit for bit");
}
