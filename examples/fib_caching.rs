//! FIB caching end to end (the paper's Section 2 application): a router
//! with a small TCAM, an SDN controller with the full table, Zipf packet
//! traffic and BGP-style update churn.
//!
//! ```text
//! cargo run --release --example fib_caching
//! ```

use std::sync::Arc;

use online_tree_caching::baselines::{DependentSetPolicy, InvalidateOnUpdate};
use online_tree_caching::core::policy::CachePolicy;
use online_tree_caching::core::tc::{TcConfig, TcFast};
use online_tree_caching::sdn::{generate_events, run_fib, FibWorkloadConfig};
use online_tree_caching::trie::{hierarchical_table, HierarchicalConfig, RuleTree};
use online_tree_caching::util::SplitMix64;

fn main() {
    let mut rng = SplitMix64::new(2026);

    // A synthetic routing table with real dependency chains (rules nested
    // inside rules), standing in for a BGP snapshot.
    let rules = RuleTree::build(&hierarchical_table(
        HierarchicalConfig { n: 2048, subdivide_p: 0.7, max_len: 28 },
        &mut rng,
    ));
    let tree = Arc::new(rules.tree().clone());
    println!(
        "routing table: {} rules, dependency height {}, max fan-out {}",
        rules.len(),
        tree.height(),
        tree.max_degree()
    );

    // Traffic: 100k events, Zipf-popular destinations, 2% update churn.
    let events = generate_events(
        &rules,
        FibWorkloadConfig { events: 100_000, theta: 1.0, update_p: 0.02, addr_attempts: 24 },
        &mut rng,
    );

    // A TCAM that holds 1/16 of the table; α = 4 (update ≈ 4 misses).
    let capacity = rules.len() / 16;
    let alpha = 4;
    println!("router TCAM capacity: {capacity} rules, α = {alpha}\n");

    let mut policies: Vec<Box<dyn CachePolicy>> = vec![
        Box::new(TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, capacity))),
        Box::new(DependentSetPolicy::lru(Arc::clone(&tree), capacity)),
        Box::new(InvalidateOnUpdate::new(Arc::clone(&tree), capacity)),
    ];
    println!(
        "{:<24} {:>10} {:>12} {:>12} {:>12}",
        "policy", "miss rate", "service", "reorg", "total"
    );
    for policy in &mut policies {
        let report = run_fib(&rules, policy.as_mut(), &events, alpha);
        println!(
            "{:<24} {:>9.2}% {:>12} {:>12} {:>12}",
            report.name,
            100.0 * report.miss_rate(),
            report.service_cost,
            report.reorg_cost,
            report.total_cost()
        );
    }
    println!(
        "\nTC's rent-or-buy counters avoid both failure modes: eager fetching of\n\
         rarely-reused dependent sets (LRU's reorg bill) and paying α for every\n\
         update to a cached rule (LRU's service bill under churn).\n"
    );

    // Scaling out: the sharded pipeline splits the trie at the default
    // route into independent subtrie shards — one TC and one slice of the
    // TCAM each — and drives them in parallel (one thread per shard).
    use online_tree_caching::core::forest::ShardId;
    use online_tree_caching::core::Tree;
    use online_tree_caching::sdn::run_fib_sharded;
    println!("sharded pipeline (total TCAM capacity {capacity} split across shards):");
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>12}",
        "shards", "miss rate", "service", "reorg", "total"
    );
    for shards in [1usize, 2, 4, 8] {
        let per_shard_capacity = (capacity / shards).max(1);
        let factory = move |shard_tree: Arc<Tree>, _shard: ShardId| {
            Box::new(TcFast::new(shard_tree, TcConfig::new(alpha, per_shard_capacity)))
                as Box<dyn CachePolicy>
        };
        let sharded = run_fib_sharded(&rules, &factory, &events, alpha, shards, shards);
        println!(
            "{:<8} {:>9.2}% {:>12} {:>12} {:>12}",
            sharded.per_shard.len(),
            100.0 * sharded.total.miss_rate(),
            sharded.total.service_cost,
            sharded.total.reorg_cost,
            sharded.total.total_cost()
        );
    }
    println!(
        "\nEach shard is verified independently and deterministically (thread count\n\
         never changes a number); throughput scaling lives in BENCH_engine.json."
    );
}
