//! The Ω(R) lower-bound adversary (paper, Appendix C) live: paging on the
//! leaves of a star, always requesting what TC lacks.
//!
//! ```text
//! cargo run --release --example lower_bound_adversary
//! ```

use std::sync::Arc;

use online_tree_caching::baselines::offline_star_upper_bound;
use online_tree_caching::core::forest::{Forest, ShardId};
use online_tree_caching::core::policy::CachePolicy;
use online_tree_caching::core::tc::{TcConfig, TcFast};
use online_tree_caching::core::Tree;
use online_tree_caching::sim::engine::{EngineConfig, ShardedEngine};
use online_tree_caching::workloads::{drive_paging_adversary, to_text};

fn main() {
    let alpha = 4u64;
    println!("star leaves = kONL + 1; each page round = α = {alpha} requests\n");
    println!(
        "{:>6} {:>8} {:>10} {:>14} {:>12} {:>10}",
        "kONL", "rounds", "TC cost", "OPT (≤, LFD)", "ratio ≥", "ratio/k"
    );
    for k in [2usize, 4, 8, 16, 32, 64] {
        // The adversary needs one more page than TC can hold.
        let tree = Arc::new(Tree::star(k + 1));
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, k));
        let rounds = 50 * k;
        let run = drive_paging_adversary(&mut tc, &tree, alpha, rounds);
        // Certify the adversary's claimed online cost: serialize the trace
        // it recorded and replay it through the verified engine (the trace
        // seam doubles as an archive format for adversarial regressions).
        let factory = |shard_tree: Arc<Tree>, _shard: ShardId| {
            Box::new(TcFast::new(shard_tree, TcConfig::new(alpha, k))) as Box<dyn CachePolicy>
        };
        let mut engine = ShardedEngine::new(
            Forest::single(Arc::clone(&tree)),
            &factory,
            EngineConfig::new(alpha),
        );
        engine.submit_trace(&to_text(&run.trace)).expect("TC never violates the protocol");
        let tc_cost = engine.into_report().expect("valid run").total();
        assert_eq!(
            tc_cost,
            run.online_service + alpha * run.online_touched,
            "verified replay must reproduce the adversary's live accounting"
        );
        // Any feasible offline solution upper-bounds OPT, so the printed
        // ratio is a certified lower bound on TC/OPT.
        let opt_ub = offline_star_upper_bound(&run.trace, alpha, k);
        let ratio = tc_cost as f64 / opt_ub as f64;
        println!(
            "{k:>6} {rounds:>8} {tc_cost:>10} {opt_ub:>14} {ratio:>12.2} {:>10.2}",
            ratio / k as f64
        );
    }
    println!(
        "\nThe certified ratio grows linearly with k = kONL — the Ω(R) lower bound\n\
         of Theorem C.1 (R = kONL when kOPT = kONL). No deterministic algorithm can\n\
         do better; TC's O(h·R) upper bound is tight in R (the star has h = 2)."
    );
}
