//! The Ω(R) lower-bound adversary (paper, Appendix C) live: paging on the
//! leaves of a star, always requesting what TC lacks.
//!
//! ```text
//! cargo run --release --example lower_bound_adversary
//! ```

use std::sync::Arc;

use online_tree_caching::baselines::offline_star_upper_bound;
use online_tree_caching::core::tc::{TcConfig, TcFast};
use online_tree_caching::core::Tree;
use online_tree_caching::workloads::drive_paging_adversary;

fn main() {
    let alpha = 4u64;
    println!("star leaves = kONL + 1; each page round = α = {alpha} requests\n");
    println!(
        "{:>6} {:>8} {:>10} {:>14} {:>12} {:>10}",
        "kONL", "rounds", "TC cost", "OPT (≤, LFD)", "ratio ≥", "ratio/k"
    );
    for k in [2usize, 4, 8, 16, 32, 64] {
        // The adversary needs one more page than TC can hold.
        let tree = Arc::new(Tree::star(k + 1));
        let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, k));
        let rounds = 50 * k;
        let run = drive_paging_adversary(&mut tc, &tree, alpha, rounds);
        let tc_cost = run.online_service + alpha * run.online_touched;
        // Any feasible offline solution upper-bounds OPT, so the printed
        // ratio is a certified lower bound on TC/OPT.
        let opt_ub = offline_star_upper_bound(&run.trace, alpha, k);
        let ratio = tc_cost as f64 / opt_ub as f64;
        println!(
            "{k:>6} {rounds:>8} {tc_cost:>10} {opt_ub:>14} {ratio:>12.2} {:>10.2}",
            ratio / k as f64
        );
    }
    println!(
        "\nThe certified ratio grows linearly with k = kONL — the Ω(R) lower bound\n\
         of Theorem C.1 (R = kONL when kOPT = kONL). No deterministic algorithm can\n\
         do better; TC's O(h·R) upper bound is tight in R (the star has h = 2)."
    );
}
