//! Measured competitive ratios against exact OPT, swept in parallel over
//! seeds and tree shapes — a small-scale replica of experiment E1.
//!
//! ```text
//! cargo run --release --example competitive_sweep
//! ```

use std::sync::Arc;

use online_tree_caching::baselines::opt_cost;
use online_tree_caching::core::tc::{TcConfig, TcFast};
use online_tree_caching::core::Tree;
use online_tree_caching::sim::engine::{EngineConfig, ShardedEngine};
use online_tree_caching::util::{parallel_map, SplitMix64};
use online_tree_caching::workloads::uniform_mixed;

fn main() {
    let shapes: Vec<(&str, Arc<Tree>)> = vec![
        ("star(8)", Arc::new(Tree::star(8))),
        ("kary(2,3)", Arc::new(Tree::kary(2, 3))),
        ("path(9)", Arc::new(Tree::path(9))),
    ];
    let alpha = 2u64;
    let k = 4usize;
    println!("α = {alpha}, kONL = kOPT = {k}, exact OPT via subforest DP\n");
    println!(
        "{:<12} {:>4} {:>4} {:>12} {:>12} {:>12}",
        "tree", "n", "h", "mean TC/OPT", "max TC/OPT", "bound h·R"
    );

    for (name, tree) in shapes {
        // 32 independent workloads, evaluated on all cores.
        let seeds: Vec<u64> = (0..32).collect();
        let ratios = parallel_map(seeds, |&seed| {
            let mut rng = SplitMix64::new(0xC0FFEE + seed);
            let reqs = uniform_mixed(&tree, 500, 0.35, &mut rng);
            // TC's cost measured through the engine (single borrowed
            // shard, full verification — a sweep cell is cheap enough).
            let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, k));
            let mut engine =
                ShardedEngine::single_borrowed(&tree, &mut tc, EngineConfig::new(alpha));
            engine.submit_batch(&reqs).expect("TC never violates the protocol");
            let tc_cost = engine.into_report().expect("valid run").total();
            tc_cost as f64 / opt_cost(&tree, &reqs, alpha, k) as f64
        });
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let max = ratios.iter().copied().fold(0.0f64, f64::max);
        let bound = f64::from(tree.height()); // R = 1 here (kONL = kOPT) times h
        println!(
            "{name:<12} {:>4} {:>4} {mean:>12.3} {max:>12.3} {bound:>12.1}",
            tree.len(),
            tree.height()
        );
    }
    println!(
        "\nTheorem 5.15 bounds TC/OPT by O(h·R) — a constant times the last column\n\
         (the rent-or-buy constant is ≥ 2: even on a single node TC pays ~2α per\n\
         fetch-evict cycle where OPT pays ~α). Measured ratios track the envelope:\n\
         flat-ish in h on easy inputs, never above a small multiple of h·R."
    );
}
