//! Observe a live server: stage-latency histograms scraped over the
//! wire while the service is under load, then a kill-dump read back
//! from disk — with the serving results provably unchanged by any of
//! it (invariant #8).
//!
//! ```text
//! cargo run --release --example observe_loopback
//! ```
//!
//! 1. start a metrics-on `otc-serve` [`Server`] over a 4-shard forest,
//!    trace-logging to a file so a kill leaves a resumable log behind;
//! 2. hammer it with concurrent submitting clients while a separate
//!    *scraper* connection polls the live metrics surface — counters
//!    and per-stage latency histograms move under its feet;
//! 3. take a final scrape, print the stage table, and write the strict
//!    canonical JSON exposition to `observe_metrics.json` (CI archives
//!    this file as a workflow artifact);
//! 4. prove invariant #8 on a deterministic workload: one sequential
//!    submitting client (so the accepted order is pinned) served twice —
//!    once observed (metrics on, scraper polling), once dark — must
//!    produce identical per-shard reports;
//! 5. `kill()` the observed server's successor mid-stream: the final
//!    scrape is dumped next to the synced log as `<log>.metrics.json`,
//!    readable after the process is gone.
//!
//! CI runs this binary as the observability smoke test.

use std::sync::Arc;

use online_tree_caching::obs::{MetricValue, MetricsSnapshot};
use online_tree_caching::prelude::*;
use online_tree_caching::serve::{Client, ServeConfig, Server, TraceLog};
use online_tree_caching::sim::engine::{EngineConfig, ShardedEngine};
use online_tree_caching::util::SplitMix64;
use online_tree_caching::workloads::{multi_tenant_stream, TenantProfile};

const ALPHA: u64 = 4;
const SHARDS: usize = 4;
const CLIENTS: usize = 4;
const PER_CLIENT: usize = 15_000;
const SEED: u64 = 0x0B5E_57A6;

fn factory(tree: Arc<Tree>, _s: ShardId) -> Box<dyn CachePolicy> {
    Box::new(TcFast::new(tree, TcConfig::new(ALPHA, 64))) as Box<dyn CachePolicy>
}

/// Serve `slices` over concurrent clients against `server`, with one
/// extra scraper connection polling the metrics surface `polls` times
/// while the load runs. Returns (requests accepted, live scrapes).
fn hammer(server: &Server, slices: &[Vec<Request>], polls: usize) -> (u64, Vec<MetricsSnapshot>) {
    let addr = server.addr();
    std::thread::scope(|scope| {
        #[allow(
            clippy::needless_collect,
            reason = "collecting spawns every submitter before the first join; a lazy \
                      iterator would run the clients one at a time"
        )]
        let submitters: Vec<_> = slices
            .iter()
            .map(|reqs| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut accepted = 0u64;
                    for chunk in reqs.chunks(256) {
                        accepted += client.submit(chunk).expect("submit");
                    }
                    client.drain().expect("drain");
                    client.bye().expect("bye");
                    accepted
                })
            })
            .collect();
        let scraper = scope.spawn(move || {
            let mut client = Client::connect(addr).expect("scraper connect");
            let mut scrapes = Vec::with_capacity(polls);
            for _ in 0..polls {
                scrapes.push(client.scrape().expect("scrape"));
                std::thread::yield_now();
            }
            client.bye().expect("bye");
            scrapes
        });
        let accepted = submitters.into_iter().map(|h| h.join().expect("client")).sum();
        (accepted, scraper.join().expect("scraper"))
    })
}

/// Sums every counter named `name` in the scrape.
fn counter(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.metrics
        .iter()
        .filter(|r| r.name == name)
        .map(|r| match &r.value {
            MetricValue::Counter(n) => *n,
            _ => 0,
        })
        .sum()
}

fn main() {
    let root = std::env::temp_dir().join(format!("otc_observe_loopback_{}", std::process::id()));
    std::fs::create_dir_all(&root).expect("scratch dir");

    // --- 1. A metrics-on server logging to a file.
    let mut rng = SplitMix64::new(SEED);
    let forest = Forest::partition(&Tree::kary(4, 5), SHARDS); // 341 nodes
    let engine_cfg = EngineConfig::bare(ALPHA).audit_every(4096).telemetry(true);
    let cfg = ServeConfig {
        log: TraceLog::File(root.join("observed.otct")),
        metrics: true,
        ..ServeConfig::default()
    };
    let server =
        Server::start(ShardedEngine::new(forest.clone(), &factory, engine_cfg), cfg.clone())
            .expect("bind 127.0.0.1");
    println!(
        "observing {} global nodes over {} shards at {}",
        forest.global_len(),
        server.num_shards(),
        server.addr()
    );

    // --- 2. Concurrent load + a live scraper on its own connection.
    let profiles = vec![TenantProfile::skewed(1.1); SHARDS];
    let slices: Vec<Vec<Request>> = (0..CLIENTS)
        .map(|_| multi_tenant_stream(&forest, &profiles, PER_CLIENT, ALPHA, &mut rng))
        .collect();
    let (accepted, live) = hammer(&server, &slices, 50);
    assert_eq!(accepted, (CLIENTS * PER_CLIENT) as u64);
    let moving = live.windows(2).any(|w| {
        counter(&w[0], "otc_serve_requests_total") < counter(&w[1], "otc_serve_requests_total")
    });
    println!(
        "{} live scrapes while {CLIENTS} clients submitted {accepted} requests \
         (counters seen moving: {moving})",
        live.len()
    );

    // --- 3. Final scrape: stage table + the JSON artifact CI archives.
    let mut probe = Client::connect(server.addr()).expect("probe connect");
    let json = probe.scrape_json().expect("final scrape");
    let last = probe.scrape().expect("final scrape parses");
    probe.bye().expect("bye");
    for record in &last.metrics {
        if let MetricValue::Histogram(h) = &record.value {
            if let (Some(p50), Some(p99)) = (h.p50(), h.p99()) {
                println!("  {:<28} n={:<8} p50={p50:>8}ns p99={p99:>9}ns", record.name, h.count);
            }
        }
    }
    assert_eq!(counter(&last, "otc_serve_requests_total"), accepted);
    std::fs::write("observe_metrics.json", &json).expect("write observe_metrics.json");
    println!("wrote observe_metrics.json ({} bytes)", json.len());
    server.shutdown().expect("clean shutdown");

    // --- 4. Invariant #8 needs a pinned accepted order, so it uses ONE
    //     sequential submitting client (concurrent submitters interleave
    //     nondeterministically at ingress, observed or not): served
    //     observed vs dark, the results must match exactly.
    let ordered: Vec<Vec<Request>> = vec![slices.concat()];
    let observed = Server::start(
        ShardedEngine::new(forest.clone(), &factory, engine_cfg),
        ServeConfig { log: TraceLog::Off, metrics: true, ..ServeConfig::default() },
    )
    .expect("bind observed");
    let (observed_accepted, _) = hammer(&observed, &ordered, 20);
    let observed_outcome = observed.shutdown().expect("clean shutdown");
    let dark = Server::start(
        ShardedEngine::new(forest.clone(), &factory, engine_cfg),
        ServeConfig { log: TraceLog::Off, metrics: false, ..ServeConfig::default() },
    )
    .expect("bind dark twin");
    let (dark_accepted, _) = hammer(&dark, &ordered, 0);
    let dark_outcome = dark.shutdown().expect("clean shutdown");
    assert_eq!(dark_accepted, observed_accepted);
    assert_eq!(
        dark_outcome.per_shard, observed_outcome.per_shard,
        "observation must not change results, per shard"
    );
    assert_eq!(dark_outcome.report, observed_outcome.report, "and in aggregate");
    println!("ok: observed run == dark twin, per shard and in aggregate (invariant #8)");

    // --- 5. Kill-dump: crash an observed server and read the final
    //     scrape it left next to the synced log.
    let killed = Server::start(ShardedEngine::new(forest, &factory, engine_cfg), cfg)
        .expect("bind kill run");
    let (killed_accepted, _) = hammer(&killed, &slices[..1], 3);
    let log = killed.kill().expect("kill syncs the log").expect("file log has a path");
    let mut dump = log.clone().into_os_string();
    dump.push(".metrics.json");
    let dumped = MetricsSnapshot::from_json(&std::fs::read_to_string(&dump).expect("dump exists"))
        .expect("dump parses");
    assert_eq!(counter(&dumped, "otc_serve_requests_total"), killed_accepted);
    println!(
        "kill-dump at {} holds the final scrape ({} series, {} requests)",
        dump.to_string_lossy(),
        dumped.metrics.len(),
        killed_accepted
    );

    std::fs::remove_dir_all(&root).ok();
}
