//! Record → persist → replay → observe: the trace & telemetry subsystem
//! end to end.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```
//!
//! 1. generate a Markov-modulated bursty workload over a 4-shard forest;
//! 2. record it to the binary trace format (a real file on disk);
//! 3. stream-replay the file through a fresh `ShardedEngine` with
//!    windowed telemetry on;
//! 4. verify the replay is bit-identical to the in-memory run and print
//!    the per-window cost timeline.

use std::fs::File;
use std::sync::Arc;

use online_tree_caching::prelude::*;
use online_tree_caching::sim::engine::{EngineConfig, ShardedEngine};
use online_tree_caching::util::SplitMix64;
use online_tree_caching::workloads::trace::{TraceHeader, TraceReader, TraceWriter};
use online_tree_caching::workloads::{markov_bursty, random_attachment, MarkovBurstyConfig};

const ALPHA: u64 = 4;
const SHARDS: usize = 4;
const SEED: u64 = 0x07AC_E5EED;

fn main() {
    // --- 1. A forest of four tenant trees and a bursty global stream.
    let mut rng = SplitMix64::new(SEED);
    let trees: Vec<Arc<Tree>> =
        (0..SHARDS).map(|_| Arc::new(random_attachment(800, &mut rng))).collect();
    let forest = Forest::from_trees(trees);
    let flat = Tree::star(forest.global_len() - 1); // global-id address space
    let cfg = MarkovBurstyConfig { len: 60_000, alpha: ALPHA, ..MarkovBurstyConfig::default() };
    let requests = markov_bursty(&flat, cfg, &mut rng);
    println!("generated {} requests over {} global nodes", requests.len(), forest.global_len());

    // --- 2. Record to disk with full provenance.
    let path = std::env::temp_dir().join("otc_trace_replay_example.otct");
    let header = TraceHeader {
        universe: forest.global_len() as u32,
        shard_map: (0..SHARDS).map(|s| forest.tree(ShardId(s as u32)).len() as u32).collect(),
        seed: SEED,
        generator: "markov-bursty".to_string(),
    };
    let mut writer = TraceWriter::new(File::create(&path).expect("create trace file"), header)
        .expect("write header");
    for &r in &requests {
        writer.push(r).expect("write record");
    }
    writer.finish().expect("patch record count");
    let on_disk = std::fs::metadata(&path).expect("stat").len();
    println!(
        "recorded {} ({on_disk} bytes, {:.2} B/request)",
        path.display(),
        on_disk as f64 / requests.len() as f64
    );

    // --- 3. Replay the file through a fresh engine, observed.
    let factory = |tree: Arc<Tree>, _shard: ShardId| {
        Box::new(TcFast::new(tree, TcConfig::new(ALPHA, 64))) as Box<dyn CachePolicy>
    };
    let engine_cfg = EngineConfig::bare(ALPHA).audit_every(8192).telemetry(true);
    let mut engine = ShardedEngine::new(forest.clone(), &factory, engine_cfg);
    let mut reader =
        TraceReader::new(File::open(&path).expect("open trace file")).expect("valid header");
    println!(
        "replaying: generator {:?}, seed {:#x}, {} records declared",
        reader.header().generator,
        reader.header().seed,
        reader.remaining().expect("finished trace declares its count")
    );
    let mut chunk = Vec::with_capacity(16 * 1024);
    engine.replay_trace(&mut reader, &mut chunk).expect("replay");
    let timeline = engine.timeline();
    let replayed = engine.into_report().expect("valid run");

    // --- 4. The replay is bit-identical to the in-memory run.
    let mut baseline = ShardedEngine::new(forest, &factory, EngineConfig::bare(ALPHA));
    baseline.submit_batch(&requests).expect("valid");
    let in_memory = baseline.into_report().expect("valid run");
    assert_eq!(replayed, in_memory, "file replay must be bit-identical");
    println!(
        "replay == in-memory run: total cost {} (service {}, reorg {})\n",
        replayed.cost.total(),
        replayed.cost.service,
        replayed.cost.reorg
    );

    // The timeline: cost over time, per shard. Print shard 0's windows.
    println!("shard 0 timeline ({}-round windows):", timeline.window_rounds);
    println!("window | paid | fetch | evict | flush | occupancy | buf high-water");
    for w in timeline.shard_windows(0) {
        println!(
            "{:>6} | {:>4} | {:>5} | {:>5} | {:>5} | {:>9} | {:>14}{}",
            w.window,
            w.paid_rounds,
            w.nodes_fetched,
            w.nodes_evicted,
            w.nodes_flushed,
            w.occupancy,
            w.buf_high_water,
            if w.partial { "  (partial)" } else { "" }
        );
    }
    let agg = |f: &dyn Fn(&online_tree_caching::sim::WindowRecord) -> u64| timeline.sum(f);
    println!(
        "\nacross all {} windows: paid {} + α·(fetched {} + evicted {} + flushed {}) = {}",
        timeline.windows.len(),
        agg(&|w| w.paid_rounds),
        agg(&|w| w.nodes_fetched),
        agg(&|w| w.nodes_evicted),
        agg(&|w| w.nodes_flushed),
        agg(&|w| w.paid_rounds)
            + ALPHA * agg(&|w| w.nodes_fetched + w.nodes_evicted + w.nodes_flushed),
    );
    assert_eq!(
        agg(&|w| w.paid_rounds)
            + ALPHA * agg(&|w| w.nodes_fetched + w.nodes_evicted + w.nodes_flushed),
        replayed.cost.total(),
        "the windows reassemble the aggregate cost exactly"
    );
    std::fs::remove_file(&path).ok();
    println!("ok: windows reassemble the aggregate report exactly");
}
