//! Crash-safe serving end to end: a loopback service with a trace log
//! and cadence snapshots is killed mid-stream, resumed from its
//! snapshot + log tail, and proven bit-identical to a run that never
//! crashed.
//!
//! ```text
//! cargo run --release --example kill_and_recover
//! ```
//!
//! 1. start an `otc-serve` [`Server`] over a 4-shard forest with a
//!    `TraceLog::File` log and an OTCS [`SnapshotPolicy`] (a consistent
//!    cut every 2048 accepted requests);
//! 2. hammer it with concurrent clients, then **kill it** — no drain, no
//!    goodbye; the log keeps its unpatched crash-state record count;
//! 3. [`Server::resume`] a fresh engine from the same paths: it scans
//!    the log's longest consistent prefix, loads the newest usable
//!    snapshot, replays only the tail, and serves again;
//! 4. submit more traffic, shut down gracefully, and replay the *final*
//!    log through an offline engine: per-shard reports, the aggregate,
//!    and the telemetry timeline must all be **bit-identical** — the
//!    durability half of the repo's determinism invariant.
//!
//! CI runs this binary as the recovery smoke test.

use std::sync::Arc;

use online_tree_caching::prelude::*;
use online_tree_caching::serve::{Client, ServeConfig, Server, SnapshotPolicy, TraceLog};
use online_tree_caching::sim::engine::{EngineConfig, ShardedEngine};
use online_tree_caching::util::SplitMix64;
use online_tree_caching::workloads::trace::TraceReader;

const ALPHA: u64 = 4;
const SHARDS: usize = 4;
const CLIENTS: usize = 3;
const PRE_CRASH: usize = 30_000;
const POST_CRASH: usize = 10_000;
const SNAP_EVERY: u64 = 2048;
const SEED: u64 = 0xDEAD_C0DE;

fn factory(tree: Arc<Tree>, _s: ShardId) -> Box<dyn CachePolicy> {
    Box::new(TcFast::new(tree, TcConfig::new(ALPHA, 24))) as Box<dyn CachePolicy>
}

fn engine_cfg() -> EngineConfig {
    EngineConfig::new(ALPHA).audit_every(4096).telemetry(true)
}

fn mixed(universe: usize, len: usize, rng: &mut SplitMix64) -> Vec<Request> {
    (0..len)
        .map(|_| {
            let v = NodeId(rng.index(universe) as u32);
            if rng.chance(0.4) {
                Request::neg(v)
            } else {
                Request::pos(v)
            }
        })
        .collect()
}

/// Pushes `reqs` through `clients` concurrent connections (no drain —
/// the server may be killed right after).
fn hammer(addr: std::net::SocketAddr, reqs: &[Request], clients: usize) {
    let per = reqs.len() / clients;
    std::thread::scope(|scope| {
        for c in 0..clients {
            let slice =
                if c + 1 == clients { &reqs[c * per..] } else { &reqs[c * per..(c + 1) * per] };
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for chunk in slice.chunks(200 + 17 * c) {
                    client.submit(chunk).expect("submit");
                }
                client.bye().expect("bye");
            });
        }
    });
}

fn main() {
    let root = std::env::temp_dir().join(format!("otc_kill_and_recover_{}", std::process::id()));
    std::fs::create_dir_all(&root).expect("scratch dir");
    let log_path = root.join("serve.otct");
    let snap_dir = root.join("snaps");
    let serve_cfg = ServeConfig {
        log: TraceLog::File(log_path.clone()),
        snapshots: Some(SnapshotPolicy { dir: snap_dir.clone(), every: SNAP_EVERY }),
        ..ServeConfig::default()
    };

    // --- 1. A durable service: file log + snapshot cadence.
    let mut rng = SplitMix64::new(SEED);
    let forest = Forest::partition(&Tree::kary(4, 4), SHARDS); // 85 nodes
    let universe = forest.global_len();
    let engine = ShardedEngine::new(forest.clone(), &factory, engine_cfg());
    let server = Server::start(engine, serve_cfg.clone()).expect("bind 127.0.0.1");
    println!(
        "serving {universe} nodes over {SHARDS} shards at {}, snapshot every {SNAP_EVERY} requests",
        server.addr()
    );

    // --- 2. Concurrent traffic, then a hard kill: no drain, no count
    // patch — exactly what a crash leaves on disk.
    let pre = mixed(universe, PRE_CRASH, &mut rng);
    hammer(server.addr(), &pre, CLIENTS);
    let path = server.kill().expect("kill syncs the log body").expect("file log");
    let snaps = std::fs::read_dir(&snap_dir)
        .map_or(0, |d| d.filter_map(Result::ok).filter(|e| e.path().extension().is_some()).count());
    println!(
        "killed after {PRE_CRASH} requests: log at {} ({} bytes), {snaps} snapshot(s) on disk",
        path.display(),
        std::fs::metadata(&path).map_or(0, |m| m.len()),
    );

    // --- 3. Recovery: snapshot + log-tail replay, then back in service.
    let engine = ShardedEngine::new(forest.clone(), &factory, engine_cfg());
    let (server, resumed) = Server::resume(engine, serve_cfg).expect("resume from log");
    println!(
        "resumed: snapshot at {:?} records, {} replayed from the tail, \
         {} requests recovered ({} torn bytes truncated, {} snapshots skipped)",
        resumed.snapshot_records,
        resumed.replayed,
        resumed.requests_recovered,
        resumed.truncated_bytes,
        resumed.snapshots_skipped
    );
    assert_eq!(resumed.requests_recovered, PRE_CRASH as u64, "clean kill loses nothing");
    assert!(
        resumed.replayed < PRE_CRASH as u64,
        "a snapshot must spare most of the log from replay"
    );

    // --- 4. More traffic on the recovered service, then a clean stop.
    let post = mixed(universe, POST_CRASH, &mut rng);
    hammer(server.addr(), &post, 2);
    let outcome = server.shutdown().expect("clean shutdown");
    assert_eq!(outcome.requests_served, (PRE_CRASH + POST_CRASH) as u64);
    println!(
        "recovered service finished: {} rounds total, cost {} (+{} snapshots this run)",
        outcome.report.rounds,
        outcome.report.cost.total(),
        outcome.snapshots_written
    );

    // --- 5. The invariant: crash + recover == one uninterrupted run.
    let bytes = std::fs::read(&log_path).expect("final log");
    let mut replayer = ShardedEngine::new(forest, &factory, engine_cfg());
    let mut reader = TraceReader::new(std::io::Cursor::new(&bytes)).expect("valid header");
    let mut chunk = Vec::with_capacity(16 * 1024);
    replayer.replay_trace(&mut reader, &mut chunk).expect("replay");
    assert_eq!(replayer.timeline(), outcome.timeline, "telemetry windows must match");
    let replayed = replayer.into_reports().expect("valid");
    assert_eq!(replayed, outcome.per_shard, "per-shard reports must match");
    assert_eq!(
        online_tree_caching::sim::aggregate_reports(replayed),
        outcome.report,
        "and the aggregate"
    );
    std::fs::remove_dir_all(&root).ok();
    println!("ok: kill + recover == uninterrupted run, bit for bit");
}
