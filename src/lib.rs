//! # online-tree-caching
//!
//! Umbrella crate for the *Online Tree Caching* (SPAA 2017) reproduction.
//! Re-exports the public API of every workspace crate under stable module
//! names, so examples and downstream users need a single dependency.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.
//!
//! ## Quick example
//!
//! The core of `examples/quickstart.rs` (run the full version with
//! `cargo run --release --example quickstart`): TC is a rent-or-buy
//! scheme over a rooted tree whose cache must always be a subforest.
//!
//! ```
//! use std::sync::Arc;
//! use online_tree_caching::prelude::*;
//!
//! // A six-node dependency tree; caching a node drags its subtree along.
//! let tree = Arc::new(Tree::from_parents(&[
//!     None,      // 0: root (default route)
//!     Some(0),   // 1
//!     Some(1),   // 2
//!     Some(1),   // 3
//!     Some(0),   // 4
//!     Some(4),   // 5
//! ]));
//!
//! // TC with per-node reorganisation cost α = 2 and capacity 3.
//! let alpha = 2;
//! let mut tc = TcFast::new(Arc::clone(&tree), TcConfig::new(alpha, 3));
//!
//! // One reusable action buffer serves the whole loop — steady-state
//! // rounds perform zero heap allocations.
//! let mut out = ActionBuffer::new();
//!
//! // Positive requests to an uncached leaf pay 1 each until their count
//! // covers the fetch cost α — then TC fetches the saturated set.
//! let leaf = NodeId(2);
//! tc.step(Request::pos(leaf), &mut out);
//! tc.step(Request::pos(leaf), &mut out);
//! assert!(matches!(out.action(0), (ActionKind::Fetch, _)));
//! assert!(tc.cache().contains(leaf));
//!
//! // Negative requests model updates: a churning cached node gets evicted
//! // once its counter pays for the eviction.
//! tc.step(Request::neg(leaf), &mut out);
//! tc.step(Request::neg(leaf), &mut out);
//! assert!(matches!(out.action(0), (ActionKind::Evict, _)));
//! assert!(!tc.cache().contains(leaf));
//!
//! // The subforest invariant: fetching node 4 forces its child 5 too.
//! for _ in 0..2 * alpha {
//!     tc.step(Request::pos(NodeId(4)), &mut out);
//! }
//! assert!(tc.cache().contains(NodeId(4)) && tc.cache().contains(NodeId(5)));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// The task-oriented user guide (`docs/GUIDE.md`), included here verbatim
/// so every snippet is compiled and executed by `cargo test --doc` and
/// every cross-reference is checked by rustdoc's intra-doc-link lint.
#[doc = include_str!("../docs/GUIDE.md")]
pub mod guide {}

pub use otc_baselines as baselines;
pub use otc_core as core;
pub use otc_obs as obs;
pub use otc_sdn as sdn;
pub use otc_serve as serve;
pub use otc_sim as sim;
pub use otc_trie as trie;
pub use otc_util as util;
pub use otc_workloads as workloads;

pub use otc_core::prelude;
