//! # online-tree-caching
//!
//! Umbrella crate for the *Online Tree Caching* (SPAA 2017) reproduction.
//! Re-exports the public API of every workspace crate under stable module
//! names, so examples and downstream users need a single dependency.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

#![forbid(unsafe_code)]

pub use otc_baselines as baselines;
pub use otc_core as core;
pub use otc_sdn as sdn;
pub use otc_sim as sim;
pub use otc_trie as trie;
pub use otc_util as util;
pub use otc_workloads as workloads;

pub use otc_core::prelude;
